package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"roadpart/internal/jobs"
)

// newJobService builds a Service for the async-job tests and closes it
// at cleanup so worker goroutines and journals are released.
func newJobService(t *testing.T, cfg Config) *Service {
	t.Helper()
	cfg.JobNoSync = true
	if cfg.JobRetryBase == 0 {
		cfg.JobRetryBase = time.Millisecond
		cfg.JobRetryMax = 2 * time.Millisecond
	}
	sv, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		sv.Close(ctx)
	})
	return sv
}

// pollJob polls GET /v1/jobs/{id} until the job is terminal.
func pollJob(t *testing.T, srv http.Handler, id string) JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s = %d body=%s", id, rec.Code, rec.Body.String())
		}
		var st JobStatusResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Job.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatusResponse{}
}

// TestJobSubmitPollResult is the async happy path: 202 with Location,
// poll to done, and a result byte-identical to the synchronous
// endpoint's response for the same document.
func TestJobSubmitPollResult(t *testing.T) {
	sv := newJobService(t, Config{CacheMaxBytes: 8 << 20})
	net := testNet(t)
	doc := PartitionRequest{Network: net, K: 3, Scheme: "AG", Seed: 1}

	rec := post(t, sv, "/v1/jobs", JobSubmitRequest{Op: "partition", Partition: &doc})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d body=%s", rec.Code, rec.Body.String())
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Job.State != jobs.StateQueued || sub.Deduplicated {
		t.Fatalf("fresh submission: %+v", sub)
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/jobs/"+sub.Job.ID {
		t.Fatalf("Location = %q", loc)
	}

	st := pollJob(t, sv, sub.Job.ID)
	if st.Job.State != jobs.StateDone || st.ResultURL == "" {
		t.Fatalf("terminal status: %+v", st)
	}

	res := httptest.NewRecorder()
	sv.ServeHTTP(res, httptest.NewRequest(http.MethodGet, st.ResultURL, nil))
	if res.Code != http.StatusOK {
		t.Fatalf("result = %d body=%s", res.Code, res.Body.String())
	}
	// The synchronous endpoint must now hit the cache entry the job
	// stored — same fingerprint, same bytes on the wire.
	sync := post(t, sv, "/v1/partition", doc)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync = %d", sync.Code)
	}
	if sync.Header().Get(CacheHeader) != "hit" {
		t.Fatalf("sync request after job missed the cache (%s)", sync.Header().Get(CacheHeader))
	}
	if !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Fatal("job result and synchronous response are not byte-identical")
	}
}

// TestJobSubmitValidation checks submissions are validated like the
// synchronous endpoints — at submit time, not attempt time.
func TestJobSubmitValidation(t *testing.T) {
	sv := newJobService(t, Config{})
	net := testNet(t)
	cases := []struct {
		name string
		body JobSubmitRequest
	}{
		{"unknown op", JobSubmitRequest{Op: "render"}},
		{"missing document", JobSubmitRequest{Op: "partition"}},
		{"missing network", JobSubmitRequest{Op: "partition", Partition: &PartitionRequest{K: 3}}},
		{"bad scheme", JobSubmitRequest{Op: "sweep", Sweep: &SweepRequest{Network: net, Scheme: "XXL"}}},
	}
	for _, tc := range cases {
		if rec := post(t, sv, "/v1/jobs", tc.body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: = %d, want 400 (body=%s)", tc.name, rec.Code, rec.Body.String())
		}
	}
}

// holdJobs stalls every job attempt (respecting the attempt context)
// so submissions pile up in deterministic states; restored at cleanup.
func holdJobs(t *testing.T) {
	t.Helper()
	testJobHooks = &jobs.Hooks{ComputeDelay: func(jobs.Spec, int) time.Duration { return time.Hour }}
	t.Cleanup(func() { testJobHooks = nil })
}

// TestJobDedupAndCancel submits the same document twice (second is
// answered with the first job) and cancels via DELETE.
func TestJobDedupAndCancel(t *testing.T) {
	// One worker and held attempts keep the second job queued, so the
	// duplicate and the cancel hit stable states.
	holdJobs(t)
	sv := newJobService(t, Config{JobWorkers: 1})
	net := testNet(t)
	hog := PartitionRequest{Network: net, K: 3, Seed: 1}
	target := PartitionRequest{Network: net, K: 4, Seed: 9}

	if rec := post(t, sv, "/v1/jobs", JobSubmitRequest{Op: "partition", Partition: &hog}); rec.Code != http.StatusAccepted {
		t.Fatalf("hog submit = %d", rec.Code)
	}
	rec := post(t, sv, "/v1/jobs", JobSubmitRequest{Op: "partition", Partition: &target})
	var first JobSubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	rec = post(t, sv, "/v1/jobs", JobSubmitRequest{Op: "partition", Partition: &target})
	var dup JobSubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &dup); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusAccepted || !dup.Deduplicated || dup.Job.ID != first.Job.ID {
		t.Fatalf("duplicate submit: code=%d %+v (want dedup onto %s)", rec.Code, dup, first.Job.ID)
	}

	del := httptest.NewRecorder()
	sv.ServeHTTP(del, httptest.NewRequest(http.MethodDelete, "/v1/jobs/"+first.Job.ID, nil))
	if del.Code != http.StatusOK {
		t.Fatalf("DELETE = %d body=%s", del.Code, del.Body.String())
	}
	st := pollJob(t, sv, first.Job.ID)
	if st.Job.State != jobs.StateCancelled {
		t.Fatalf("after DELETE: %+v", st.Job)
	}
	// The result of a cancelled job is a 409, not a 404 or a body.
	res := httptest.NewRecorder()
	sv.ServeHTTP(res, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+first.Job.ID+"/result", nil))
	if res.Code != http.StatusConflict {
		t.Fatalf("result of cancelled job = %d, want 409", res.Code)
	}
}

// TestJobQueueFullRetryAfter fills the job queue and checks the 429
// carries a dynamic Retry-After within the documented bounds.
func TestJobQueueFullRetryAfter(t *testing.T) {
	holdJobs(t)
	sv := newJobService(t, Config{JobWorkers: 1, JobQueueDepth: 1})
	net := testNet(t)
	if rec := post(t, sv, "/v1/jobs", JobSubmitRequest{Op: "partition", Partition: &PartitionRequest{Network: net, K: 3, Seed: 1}}); rec.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d", rec.Code)
	}
	rec := post(t, sv, "/v1/jobs", JobSubmitRequest{Op: "partition", Partition: &PartitionRequest{Network: net, K: 4, Seed: 2}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit = %d, want 429 (body=%s)", rec.Code, rec.Body.String())
	}
	ra := rec.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer", ra)
	}
	if secs < 1 || secs > 600 {
		t.Fatalf("Retry-After %d outside the pinned [1,600] bounds", secs)
	}
}

// TestJobRestartMidJob is the crash-recovery integration check: a
// daemon is drained mid-workload, a second daemon on the same journal
// and cache directories replays and finishes the jobs, and the result
// it serves is byte-identical to its synchronous endpoint — which in
// turn structurally matches a from-scratch compute on a cache-less
// server (Elapsed, the one wall-clock field, aside).
func TestJobRestartMidJob(t *testing.T) {
	jobDir, cacheDir := t.TempDir(), t.TempDir()
	net := testNet(t)
	doc := PartitionRequest{Network: net, K: 3, Scheme: "AG", Seed: 1}
	cfg := Config{JobDir: jobDir, CacheDir: cacheDir, CacheMaxBytes: 8 << 20, JobNoSync: true,
		JobRetryBase: time.Millisecond, JobRetryMax: 2 * time.Millisecond}

	first, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := post(t, first, "/v1/jobs", JobSubmitRequest{Op: "partition", Partition: &doc})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", rec.Code)
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	// Drain immediately: whether the attempt was queued, mid-compute
	// (checkpointed) or already done, the journal must carry the job
	// across the restart.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := first.Close(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	second := newJobService(t, cfg)
	st := pollJob(t, second, sub.Job.ID)
	if st.Job.State != jobs.StateDone {
		t.Fatalf("replayed job on restarted daemon: %+v", st.Job)
	}
	res := httptest.NewRecorder()
	second.ServeHTTP(res, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+sub.Job.ID+"/result", nil))
	if res.Code != http.StatusOK {
		t.Fatalf("result = %d body=%s", res.Code, res.Body.String())
	}
	sync := post(t, second, "/v1/partition", doc)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync = %d", sync.Code)
	}
	if !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Fatal("restarted job result and synchronous response are not byte-identical")
	}

	// Structural identity against a from-scratch compute: same assign,
	// same k′, same quality report — only Elapsed may differ.
	var fromJob, fresh PartitionResponse
	if err := json.Unmarshal(res.Body.Bytes(), &fromJob); err != nil {
		t.Fatal(err)
	}
	plain := post(t, New(), "/v1/partition", doc)
	if plain.Code != http.StatusOK {
		t.Fatalf("fresh sync = %d", plain.Code)
	}
	if err := json.Unmarshal(plain.Body.Bytes(), &fresh); err != nil {
		t.Fatal(err)
	}
	if fromJob.K != fresh.K || fromJob.KPrime != fresh.KPrime || fromJob.Report != fresh.Report {
		t.Fatalf("job result diverges from a from-scratch compute:\njob:   k=%d k'=%d %+v\nfresh: k=%d k'=%d %+v",
			fromJob.K, fromJob.KPrime, fromJob.Report, fresh.K, fresh.KPrime, fresh.Report)
	}
	for i := range fresh.Assign {
		if fromJob.Assign[i] != fresh.Assign[i] {
			t.Fatalf("assignment diverges at segment %d", i)
		}
	}
}

// TestJobSweepGoldenUnchanged runs a sweep through the job path and
// checks it agrees with the synchronous sweep — the FNV-keyed sweep
// behavior is identical whichever door the request comes in.
func TestJobSweepGoldenUnchanged(t *testing.T) {
	sv := newJobService(t, Config{CacheMaxBytes: 8 << 20})
	net := testNet(t)
	doc := SweepRequest{Network: net, KMin: 2, KMax: 5, Seed: 1}
	rec := post(t, sv, "/v1/jobs", JobSubmitRequest{Op: "sweep", Sweep: &doc})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d body=%s", rec.Code, rec.Body.String())
	}
	var sub JobSubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	st := pollJob(t, sv, sub.Job.ID)
	if st.Job.State != jobs.StateDone {
		t.Fatalf("sweep job: %+v", st.Job)
	}
	res := httptest.NewRecorder()
	sv.ServeHTTP(res, httptest.NewRequest(http.MethodGet, st.ResultURL, nil))
	sync := post(t, sv, "/v1/sweep", doc)
	if sync.Code != http.StatusOK || res.Code != http.StatusOK {
		t.Fatalf("result=%d sync=%d", res.Code, sync.Code)
	}
	if !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Fatal("sweep job result and synchronous sweep are not byte-identical")
	}
}
