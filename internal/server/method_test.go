package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMethodEnforcementAllRoutes audits every route: each supported
// method passes the gate, every other common method is answered 405
// with an Allow header naming the methods the route serves.
func TestMethodEnforcementAllRoutes(t *testing.T) {
	srv := New()
	routes := []struct {
		path    string
		methods []string // the supported methods
		allow   string   // expected Allow header on a 405
	}{
		{"/v1/healthz", []string{http.MethodGet}, http.MethodGet},
		{"/v1/partition", []string{http.MethodPost}, http.MethodPost},
		{"/v1/sweep", []string{http.MethodPost}, http.MethodPost},
		{"/v1/jobs", []string{http.MethodPost}, http.MethodPost},
		{"/v1/jobs/j000001-0000000000000000", []string{http.MethodGet, http.MethodDelete}, "GET, DELETE"},
		{"/v1/jobs/j000001-0000000000000000/result", []string{http.MethodGet}, http.MethodGet},
		{"/v1/render", []string{http.MethodPost}, http.MethodPost},
		{"/v1/densities", []string{http.MethodPost}, http.MethodPost},
		{"/v1/watch", []string{http.MethodGet}, http.MethodGet},
		{"/v1/metrics", []string{http.MethodGet}, http.MethodGet},
		{"/v1/stats", []string{http.MethodGet}, http.MethodGet},
	}
	wrong := []string{
		http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete,
		http.MethodPatch, http.MethodHead, http.MethodOptions,
	}
	for _, route := range routes {
		supported := make(map[string]bool)
		for _, m := range route.methods {
			supported[m] = true
		}
		for _, method := range wrong {
			if supported[method] {
				continue
			}
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest(method, route.path, nil))
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, route.path, rec.Code)
				continue
			}
			if got := rec.Header().Get("Allow"); got != route.allow {
				t.Errorf("%s %s: Allow = %q, want %q", method, route.path, got, route.allow)
			}
			if !strings.Contains(rec.Body.String(), "use "+route.methods[0]) {
				t.Errorf("%s %s: body %q does not name the allowed method", method, route.path, rec.Body.String())
			}
		}
	}
}

// TestSupportedMethodPassesGate spot-checks that the gate lets the
// supported method through: GET routes answer 200 outright, POST
// routes get past 405 to a body-validation 400 on an empty body, and
// the per-job routes reach their 404 for an unknown id.
func TestSupportedMethodPassesGate(t *testing.T) {
	srv := New()
	for _, path := range []string{"/v1/healthz", "/v1/metrics", "/v1/stats"} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
	for _, path := range []string{"/v1/partition", "/v1/sweep", "/v1/jobs", "/v1/render", "/v1/densities"} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("POST %s (empty body) = %d, want 400", path, rec.Code)
		}
	}
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/j000001-0000000000000000"},
		{http.MethodDelete, "/v1/jobs/j000001-0000000000000000"},
		{http.MethodGet, "/v1/jobs/j000001-0000000000000000/result"},
	} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(probe.method, probe.path, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s %s (unknown id) = %d, want 404", probe.method, probe.path, rec.Code)
		}
	}
}
