package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMethodEnforcementAllRoutes audits every route: the supported
// method passes the gate, every other common method is answered 405
// with an Allow header naming the one method the route serves.
func TestMethodEnforcementAllRoutes(t *testing.T) {
	srv := New()
	routes := []struct {
		path   string
		method string // the single supported method
	}{
		{"/v1/healthz", http.MethodGet},
		{"/v1/partition", http.MethodPost},
		{"/v1/sweep", http.MethodPost},
		{"/v1/render", http.MethodPost},
		{"/v1/densities", http.MethodPost},
		{"/v1/watch", http.MethodGet},
		{"/v1/metrics", http.MethodGet},
		{"/v1/stats", http.MethodGet},
	}
	wrong := []string{
		http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete,
		http.MethodPatch, http.MethodHead, http.MethodOptions,
	}
	for _, route := range routes {
		for _, method := range wrong {
			if method == route.method {
				continue
			}
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest(method, route.path, nil))
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, route.path, rec.Code)
				continue
			}
			if got := rec.Header().Get("Allow"); got != route.method {
				t.Errorf("%s %s: Allow = %q, want %q", method, route.path, got, route.method)
			}
			if !strings.Contains(rec.Body.String(), "use "+route.method) {
				t.Errorf("%s %s: body %q does not name the allowed method", method, route.path, rec.Body.String())
			}
		}
	}
}

// TestSupportedMethodPassesGate spot-checks that the gate lets the
// supported method through: GET routes answer 200 outright, and POST
// routes get past 405 to a body-validation 400 on an empty body.
func TestSupportedMethodPassesGate(t *testing.T) {
	srv := New()
	for _, path := range []string{"/v1/healthz", "/v1/metrics", "/v1/stats"} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
	for _, path := range []string{"/v1/partition", "/v1/sweep", "/v1/render", "/v1/densities"} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("POST %s (empty body) = %d, want 400", path, rec.Code)
		}
	}
}
