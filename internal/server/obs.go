package server

import (
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"roadpart/internal/obs"
)

// processStart anchors the uptime reported by /v1/stats.
var processStart = time.Now()

// trackedPaths is the closed set of path label values for the HTTP
// metrics; anything else is folded into "other" so an URL-scanning
// client cannot explode the label cardinality.
var trackedPaths = map[string]bool{
	"/v1/healthz":   true,
	"/v1/partition": true,
	"/v1/sweep":     true,
	"/v1/jobs":      true,
	"/v1/render":    true,
	"/v1/densities": true,
	"/v1/watch":     true,
	"/v1/metrics":   true,
	"/v1/stats":     true,
}

// metricPath folds a request path into the closed label set: per-job
// URLs ("/v1/jobs/j000001-…", "…/result") collapse to one label so job
// polling cannot explode the cardinality either.
func metricPath(path string) string {
	switch {
	case trackedPaths[path]:
		return path
	case strings.HasPrefix(path, "/v1/jobs/"):
		return "/v1/jobs/{id}"
	default:
		return "other"
	}
}

const (
	reqCountHelp = "HTTP requests served, by path and status code."
	reqTimeHelp  = "HTTP request latency, by path."
)

// instrument wraps the service mux with per-request accounting: a
// latency timer per path and a counter per (path, status code).
func instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := metricPath(r.URL.Path)
		sw := &statusWriter{ResponseWriter: w}
		sp := obs.Default().Timer("roadpart_http_request_duration_seconds", reqTimeHelp,
			"path", path).Start()
		next.ServeHTTP(sw, r)
		sp.End()
		obs.Default().Counter("roadpart_http_requests_total", reqCountHelp,
			"path", path, "code", strconv.Itoa(sw.status())).Inc()
	})
}

// statusWriter captures the response status code for the request
// counter; a handler that never calls WriteHeader implicitly sends 200.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach its Flusher — the SSE endpoint streams through this middleware.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// handleMetrics serves GET /v1/metrics: the process-wide registry in the
// Prometheus text exposition format — per-stage pipeline durations,
// cache/restart/matvec tallies, and the per-endpoint request metrics.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = obs.Default().WritePrometheus(w)
}

// StatsResponse is the body of GET /v1/stats: a JSON snapshot of every
// registered metric plus light process information.
type StatsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	GoVersion     string       `json:"go_version"`
	Goroutines    int          `json:"goroutines"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	Metrics       []obs.Metric `json:"metrics"`
}

// handleStats serves GET /v1/stats.
func handleStats(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(processStart).Seconds(),
		GoVersion:     runtime.Version(),
		Goroutines:    runtime.NumGoroutine(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Metrics:       obs.Default().Snapshot(),
	})
}
