package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"roadpart/internal/obs"
)

func get(t *testing.T, srv http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestMetricsEndpoint drives one sweep through the service and checks
// that /v1/metrics then exposes valid Prometheus text with per-stage
// durations and per-endpoint request counters — the acceptance path.
func TestMetricsEndpoint(t *testing.T) {
	srv := New()
	net := testNet(t)
	if rec := post(t, srv, "/v1/sweep", SweepRequest{Network: net, KMin: 2, KMax: 4, Scheme: "ASG", Seed: 1}); rec.Code != http.StatusOK {
		t.Fatalf("sweep status = %d body=%s", rec.Code, rec.Body.String())
	}

	rec := get(t, srv, "/v1/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`roadpart_stage_duration_seconds_count{stage="spectral_cut"}`,
		`roadpart_stage_duration_seconds_sum{stage="mcg_shortlist"}`,
		`roadpart_http_requests_total{code="200",path="/v1/sweep"}`,
		`roadpart_http_request_duration_seconds_count{path="/v1/sweep"}`,
		"# TYPE roadpart_stage_duration_seconds summary",
		"# TYPE roadpart_http_requests_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Every line must be a comment or `name[{labels}] value` — a cheap
	// validity check of the exposition format.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// Method guard.
	if rec := post(t, srv, "/v1/metrics", struct{}{}); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST metrics status = %d", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := New()
	net := testNet(t)
	if rec := post(t, srv, "/v1/partition", PartitionRequest{Network: net, K: 3, Scheme: "ASG", Seed: 1}); rec.Code != http.StatusOK {
		t.Fatalf("partition status = %d body=%s", rec.Code, rec.Body.String())
	}

	rec := get(t, srv, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("stats body not JSON: %v", err)
	}
	if resp.UptimeSeconds <= 0 || resp.Goroutines <= 0 || resp.GOMAXPROCS <= 0 || resp.GoVersion == "" {
		t.Fatalf("stats process info incomplete: %+v", resp)
	}
	found := false
	for _, m := range resp.Metrics {
		if m.Name == obs.StageFamily {
			found = true
			if m.Kind != "summary" {
				t.Errorf("stage family kind = %q", m.Kind)
			}
		}
	}
	if !found {
		t.Fatalf("stats missing %s", obs.StageFamily)
	}

	if rec := post(t, srv, "/v1/stats", struct{}{}); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST stats status = %d", rec.Code)
	}
}

// TestRequestCounterCodes checks the middleware's status labeling: a bad
// request and an unknown path are both counted, the latter folded into
// path="other".
func TestRequestCounterCodes(t *testing.T) {
	srv := New()
	before400 := obs.Default().Counter("roadpart_http_requests_total", reqCountHelp,
		"path", "/v1/partition", "code", "400").Value()
	beforeOther := obs.Default().Counter("roadpart_http_requests_total", reqCountHelp,
		"path", "other", "code", "404").Value()

	if rec := post(t, srv, "/v1/partition", map[string]any{"bogus": true}); rec.Code != http.StatusBadRequest {
		t.Fatalf("bogus partition status = %d", rec.Code)
	}
	if rec := get(t, srv, "/v1/nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", rec.Code)
	}

	after400 := obs.Default().Counter("roadpart_http_requests_total", reqCountHelp,
		"path", "/v1/partition", "code", "400").Value()
	afterOther := obs.Default().Counter("roadpart_http_requests_total", reqCountHelp,
		"path", "other", "code", "404").Value()
	if after400 != before400+1 {
		t.Errorf("400 counter went %d -> %d", before400, after400)
	}
	if afterOther != beforeOther+1 {
		t.Errorf("other/404 counter went %d -> %d", beforeOther, afterOther)
	}
}
