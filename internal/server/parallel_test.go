package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestSweepWorkersDeterministic exercises the request-level workers knob:
// the same sweep request answered serially and on 4 workers must return
// identical best_k and per-k reports.
func TestSweepWorkersDeterministic(t *testing.T) {
	net := testNet(t)
	srv := New()
	run := func(workers int) SweepResponse {
		t.Helper()
		rec := post(t, srv, "/v1/sweep", SweepRequest{
			Network: net, KMin: 2, KMax: 6, Scheme: "AG", Seed: 5, Workers: workers,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, rec.Code, rec.Body.String())
		}
		var resp SweepResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	ref, par := run(1), run(4)
	if par.BestK != ref.BestK {
		t.Fatalf("best_k %d != %d", par.BestK, ref.BestK)
	}
	if len(par.Points) != len(ref.Points) {
		t.Fatalf("%d points != %d", len(par.Points), len(ref.Points))
	}
	for i := range ref.Points {
		if par.Points[i].K != ref.Points[i].K || par.Points[i].Report != ref.Points[i].Report {
			t.Fatalf("point %d differs between workers=1 and workers=4", i)
		}
	}
}

// TestServerDefaultWorkers checks NewWith plumbs the server-level default
// and that a request-level override still works on the partition path.
func TestServerDefaultWorkers(t *testing.T) {
	net := testNet(t)
	serial := post(t, NewWith(Config{Workers: 1}), "/v1/partition",
		PartitionRequest{Network: net, K: 4, Scheme: "AG", Seed: 9})
	if serial.Code != http.StatusOK {
		t.Fatalf("serial: status %d: %s", serial.Code, serial.Body.String())
	}
	override := post(t, NewWith(Config{Workers: 1}), "/v1/partition",
		PartitionRequest{Network: net, K: 4, Scheme: "AG", Seed: 9, Workers: 8})
	if override.Code != http.StatusOK {
		t.Fatalf("override: status %d: %s", override.Code, override.Body.String())
	}
	var a, b PartitionResponse
	if err := json.Unmarshal(serial.Body.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(override.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if a.K != b.K {
		t.Fatalf("K %d != %d", a.K, b.K)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment differs at segment %d", i)
		}
	}
}
