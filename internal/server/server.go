// Package server exposes the partitioning framework — the paper's
// three-module pipeline of Figure 2 — as a JSON-over-HTTP service, so
// non-Go traffic-management stacks can call it. Endpoints (documented in
// full in docs/API.md):
//
//	POST /v1/partition  — partition a network at a fixed k
//	POST /v1/sweep      — sweep k and report per-k quality (+ the ANS pick)
//	POST /v1/render     — render a network (and optional assignment) as SVG
//	GET  /v1/healthz    — liveness
//	GET  /v1/metrics    — Prometheus text exposition (stage timers, counters)
//	GET  /v1/stats      — JSON metrics snapshot + process info
//
// Requests carry the network inline (the roadnet JSON schema). The
// service is stateless; every request is independent. All requests flow
// through an instrumentation middleware that records per-endpoint
// latency and status-code counters into the internal/obs registry, then
// a panic-recovery net and (when configured) an admission controller
// that bounds concurrent compute; each compute request runs under a
// deadline-carrying context. Failure paths and their status codes
// (408/429/499/503) are defined in harden.go and docs/API.md.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"roadpart/internal/core"
	"roadpart/internal/metrics"
	"roadpart/internal/render"
	"roadpart/internal/roadnet"
)

// maxBodyBytes bounds request bodies (a 100k-segment network with
// densities serializes well under this).
const maxBodyBytes = 64 << 20

// PartitionRequest is the body of POST /v1/partition.
type PartitionRequest struct {
	Network *roadnet.Network `json:"network"`
	K       int              `json:"k"`
	// Scheme is "AG", "NG", "ASG" or "NSG"; empty selects ASG.
	Scheme string `json:"scheme,omitempty"`
	// StabilityEps is the supernode stability threshold (0 = off).
	StabilityEps float64 `json:"stability_eps,omitempty"`
	// Refine applies α-Cut boundary refinement.
	Refine bool   `json:"refine,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	// Workers bounds the goroutines serving this request's parallel
	// stages; 0 uses the server default. Results are identical for every
	// worker count at the same seed.
	Workers int `json:"workers,omitempty"`
	// TimeoutMs bounds this request's compute time in milliseconds,
	// capped at the server's MaxTimeout. 0 uses the server default.
	// An exceeded budget returns 408 with the partial work discarded.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// PartitionResponse is the body of a successful partition call.
type PartitionResponse struct {
	Assign  []int          `json:"assign"`
	K       int            `json:"k"`
	Report  metrics.Report `json:"report"`
	Timing  TimingJSON     `json:"timing"`
	Elapsed string         `json:"elapsed"`
}

// TimingJSON is the module breakdown in milliseconds.
type TimingJSON struct {
	Module1Ms float64 `json:"module1_ms"`
	Module2Ms float64 `json:"module2_ms"`
	Module3Ms float64 `json:"module3_ms"`
	TotalMs   float64 `json:"total_ms"`
}

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	Network *roadnet.Network `json:"network"`
	KMin    int              `json:"k_min"`
	KMax    int              `json:"k_max"`
	Scheme  string           `json:"scheme,omitempty"`
	Seed    uint64           `json:"seed,omitempty"`
	// Workers bounds the goroutines serving this request's parallel
	// stages; 0 uses the server default.
	Workers int `json:"workers,omitempty"`
	// TimeoutMs bounds this request's compute time in milliseconds,
	// capped at the server's MaxTimeout. 0 uses the server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// SweepResponse reports per-k quality and the ANS-minimum selection.
type SweepResponse struct {
	BestK  int              `json:"best_k"`
	Points []SweepPointJSON `json:"points"`
}

// SweepPointJSON is one k of a sweep.
type SweepPointJSON struct {
	K      int            `json:"k"`
	Report metrics.Report `json:"report"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Config tunes the service.
type Config struct {
	// Workers is the default worker count for the parallel stages of
	// each request (k-sweep fan-out, k-means restarts): 0 selects
	// GOMAXPROCS, 1 forces serial. A request's nonzero workers field
	// overrides it.
	Workers int
	// DefaultTimeout bounds each compute request's pipeline work when
	// the client sends no timeout_ms. 0 imposes no server-side deadline
	// (the request is still cancelled if the client disconnects).
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-supplied timeout_ms. 0 selects 10m.
	MaxTimeout time.Duration
	// MaxInFlight bounds concurrently computing partition/sweep
	// requests. 0 disables admission control.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; beyond it
	// requests are shed with 429. Meaningful only with MaxInFlight > 0.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot
	// before being shed with 503. 0 selects 5s.
	QueueWait time.Duration
}

// service carries the server configuration into the handlers.
type service struct {
	cfg    Config
	slots  chan struct{} // in-flight tokens; nil when admission is off
	queued atomic.Int64  // requests waiting for a slot
}

// New returns the service's HTTP handler with default configuration.
func New() http.Handler { return NewWith(Config{}) }

// NewWith returns the service's HTTP handler under cfg. The handler
// chain is instrument(recoverPanics(admit(mux))): accounting sees every
// request including sheds and recovered panics, the panic net catches
// anything below it, and admission bounds only the compute endpoints.
func NewWith(cfg Config) http.Handler {
	s := &service{cfg: cfg}
	if cfg.MaxInFlight > 0 {
		s.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", handleHealth)
	mux.HandleFunc("/v1/partition", s.handlePartition)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/render", handleRender)
	mux.HandleFunc("/v1/metrics", handleMetrics)
	mux.HandleFunc("/v1/stats", handleStats)
	return instrument(recoverPanics(s.admit(mux)))
}

// workers resolves a request-level override against the server default.
func (s *service) workers(req int) int {
	if req != 0 {
		return req
	}
	return s.cfg.Workers
}

// RenderRequest is the body of POST /v1/render: a network plus an
// optional assignment. The response is image/svg+xml — partitions when an
// assignment is given, densities otherwise.
type RenderRequest struct {
	Network *roadnet.Network `json:"network"`
	Assign  []int            `json:"assign,omitempty"`
	Title   string           `json:"title,omitempty"`
}

func handleRender(w http.ResponseWriter, r *http.Request) {
	var req RenderRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Network == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing network"))
		return
	}
	if err := req.Network.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Assign != nil && len(req.Assign) != len(req.Network.Segments) {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("%d assignments for %d segments", len(req.Assign), len(req.Network.Segments)))
		return
	}
	// Render into memory first so failures still produce a clean error
	// response instead of a truncated SVG.
	var buf bytes.Buffer
	var err error
	if req.Assign != nil {
		err = render.Partitions(&buf, req.Network, req.Assign, render.Options{Title: req.Title})
	} else {
		err = render.Densities(&buf, req.Network, render.Options{Title: req.Title})
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *service) handlePartition(w http.ResponseWriter, r *http.Request) {
	var req PartitionRequest
	if !readJSON(w, r, &req) {
		return
	}
	cfg, err := buildConfig(req.Scheme, req.Seed)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cfg.K = req.K
	cfg.StabilityEps = req.StabilityEps
	cfg.Refine = req.Refine
	cfg.Workers = s.workers(req.Workers)
	if req.Network == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing network"))
		return
	}
	if err := req.Network.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, budget := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	t0 := time.Now()
	res, err := core.PartitionCtx(ctx, req.Network, cfg)
	if err != nil {
		writeComputeErr(w, budget, err)
		return
	}
	writeJSON(w, http.StatusOK, PartitionResponse{
		Assign: res.Assign,
		K:      res.K,
		Report: res.Report,
		Timing: TimingJSON{
			Module1Ms: ms(res.Timing.Module1),
			Module2Ms: ms(res.Timing.Module2),
			Module3Ms: ms(res.Timing.Module3),
			TotalMs:   ms(res.Timing.Total),
		},
		Elapsed: time.Since(t0).String(),
	})
}

func (s *service) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !readJSON(w, r, &req) {
		return
	}
	cfg, err := buildConfig(req.Scheme, req.Seed)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cfg.Workers = s.workers(req.Workers)
	if req.Network == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing network"))
		return
	}
	if err := req.Network.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, budget := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	p, err := core.NewPipelineCtx(ctx, req.Network, cfg)
	if err != nil {
		writeComputeErr(w, budget, err)
		return
	}
	kMin, kMax := req.KMin, req.KMax
	if kMin == 0 {
		kMin = 2
	}
	if kMax == 0 {
		kMax = 10
	}
	if p.SG != nil && kMax > len(p.SG.Nodes) {
		kMax = len(p.SG.Nodes)
	}
	if kMax < kMin {
		writeErr(w, http.StatusUnprocessableEntity, fmt.Errorf("network supports no k in [%d,%d]", req.KMin, req.KMax))
		return
	}
	best, sweep, err := p.BestKByANSCtx(ctx, kMin, kMax)
	if err != nil {
		writeComputeErr(w, budget, err)
		return
	}
	resp := SweepResponse{BestK: best}
	for _, pt := range sweep {
		resp.Points = append(resp.Points, SweepPointJSON{K: pt.K, Report: pt.Result.Report})
	}
	writeJSON(w, http.StatusOK, resp)
}

func buildConfig(scheme string, seed uint64) (core.Config, error) {
	cfg := core.Config{Seed: seed}
	switch scheme {
	case "", "ASG":
		cfg.Scheme = core.ASG
	case "AG":
		cfg.Scheme = core.AG
	case "NG":
		cfg.Scheme = core.NG
	case "NSG":
		cfg.Scheme = core.NSG
	default:
		return cfg, fmt.Errorf("unknown scheme %q (want AG, NG, ASG or NSG)", scheme)
	}
	return cfg, nil
}

// readJSON decodes the request body, writing the error response itself
// and returning false on failure.
func readJSON(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
