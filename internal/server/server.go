// Package server exposes the partitioning framework — the paper's
// three-module pipeline of Figure 2 — as a JSON-over-HTTP service, so
// non-Go traffic-management stacks can call it. Endpoints (documented in
// full in docs/API.md):
//
//	POST /v1/partition  — partition a network at a fixed k
//	POST /v1/sweep      — sweep k and report per-k quality (+ the ANS pick)
//	POST /v1/jobs       — submit a partition/sweep as a durable async job (202)
//	GET  /v1/jobs/{id}  — poll a job's state machine; DELETE cancels it
//	GET  /v1/jobs/{id}/result — fetch a done job's body (bit-identical to sync)
//	POST /v1/render     — render a network (and optional assignment) as SVG
//	POST /v1/densities  — advance the density stream (full vector or delta)
//	GET  /v1/watch      — SSE feed of the stream's repartition events
//	GET  /v1/healthz    — liveness
//	GET  /v1/metrics    — Prometheus text exposition (stage timers, counters)
//	GET  /v1/stats      — JSON metrics snapshot + process info
//
// Requests carry the network inline (the roadnet JSON schema). The
// stateless endpoints hold no per-client state; the density stream
// (stream.go) is the deliberate exception — it keeps a temporal.Tracker
// alive across calls so sparse updates repartition incrementally. All
// requests flow through an instrumentation middleware that records
// per-endpoint latency and status-code counters into the internal/obs
// registry, then a panic-recovery net; each compute request runs under a
// deadline-carrying context. When Config.CacheMaxBytes is set, compute
// responses are served from a content-addressed result cache
// (internal/resultcache) consulted BEFORE admission control — a cache
// hit costs no compute slot — and every partition/sweep response then
// carries an X-Roadpart-Cache: hit|miss header. Failure paths and their
// status codes (408/429/499/503) are defined in harden.go and
// docs/API.md.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"roadpart/internal/core"
	"roadpart/internal/jobs"
	"roadpart/internal/metrics"
	"roadpart/internal/peers"
	"roadpart/internal/render"
	"roadpart/internal/resultcache"
	"roadpart/internal/roadnet"
)

// maxBodyBytes bounds request bodies (a 100k-segment network with
// densities serializes well under this).
const maxBodyBytes = 64 << 20

// PartitionRequest is the body of POST /v1/partition.
type PartitionRequest struct {
	Network *roadnet.Network `json:"network"`
	K       int              `json:"k"`
	// Scheme is "AG", "NG", "ASG" or "NSG"; empty selects ASG.
	Scheme string `json:"scheme,omitempty"`
	// StabilityEps is the supernode stability threshold (0 = off).
	StabilityEps float64 `json:"stability_eps,omitempty"`
	// Refine applies α-Cut boundary refinement.
	Refine bool   `json:"refine,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	// Workers bounds the goroutines serving this request's parallel
	// stages; 0 uses the server default. Results are identical for every
	// worker count at the same seed.
	Workers int `json:"workers,omitempty"`
	// Multilevel selects the multilevel coarsening path for this request:
	// "auto", "on" or "off" (docs/SCALING.md). Empty uses the server
	// default (Config.Multilevel, itself defaulting to auto).
	Multilevel string `json:"multilevel,omitempty"`
	// TimeoutMs bounds this request's compute time in milliseconds,
	// capped at the server's MaxTimeout. 0 uses the server default.
	// An exceeded budget returns 408 with the partial work discarded.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// PartitionResponse is the body of a successful partition call.
type PartitionResponse struct {
	Assign []int `json:"assign"`
	K      int   `json:"k"`
	// KPrime is the disjoint partition count before the k′→k reduction.
	KPrime int            `json:"k_prime"`
	Report metrics.Report `json:"report"`
	Timing TimingJSON     `json:"timing"`
	// Elapsed is the wall-clock time of the compute that produced this
	// body. A cached response replays the original compute's value.
	Elapsed string `json:"elapsed"`
}

// TimingJSON is the module breakdown in milliseconds.
type TimingJSON struct {
	Module1Ms float64 `json:"module1_ms"`
	Module2Ms float64 `json:"module2_ms"`
	Module3Ms float64 `json:"module3_ms"`
	TotalMs   float64 `json:"total_ms"`
}

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	Network *roadnet.Network `json:"network"`
	KMin    int              `json:"k_min"`
	KMax    int              `json:"k_max"`
	Scheme  string           `json:"scheme,omitempty"`
	Seed    uint64           `json:"seed,omitempty"`
	// Workers bounds the goroutines serving this request's parallel
	// stages; 0 uses the server default.
	Workers int `json:"workers,omitempty"`
	// Multilevel selects the multilevel coarsening path: "auto", "on" or
	// "off" (docs/SCALING.md). Empty uses the server default.
	Multilevel string `json:"multilevel,omitempty"`
	// TimeoutMs bounds this request's compute time in milliseconds,
	// capped at the server's MaxTimeout. 0 uses the server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// SweepResponse reports per-k quality and the ANS-minimum selection.
type SweepResponse struct {
	BestK  int              `json:"best_k"`
	Points []SweepPointJSON `json:"points"`
}

// SweepPointJSON is one k of a sweep.
type SweepPointJSON struct {
	K      int            `json:"k"`
	Report metrics.Report `json:"report"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Config tunes the service.
type Config struct {
	// Workers is the default worker count for the parallel stages of
	// each request (k-sweep fan-out, k-means restarts): 0 selects
	// GOMAXPROCS, 1 forces serial. A request's nonzero workers field
	// overrides it.
	Workers int
	// DefaultTimeout bounds each compute request's pipeline work when
	// the client sends no timeout_ms. 0 imposes no server-side deadline
	// (the request is still cancelled if the client disconnects).
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-supplied timeout_ms. 0 selects 10m;
	// "no cap" is intentionally not expressible — an uncapped client
	// deadline would let one request pin a compute slot indefinitely.
	MaxTimeout time.Duration
	// Multilevel is the default multilevel coarsening mode applied when a
	// request leaves its multilevel field empty: "auto" (or empty), "on"
	// or "off" (core.ParseMultilevelMode, docs/SCALING.md).
	Multilevel string
	// MaxInFlight bounds concurrently computing partition/sweep
	// requests. 0 disables admission control.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; beyond it
	// requests are shed with 429. Meaningful only with MaxInFlight > 0.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot
	// before being shed with 503. 0 selects 5s; "shed immediately when
	// saturated" is expressed with MaxQueue = 0, so a literal zero wait
	// is intentionally not reachable through this field.
	QueueWait time.Duration
	// CacheMaxBytes bounds the in-memory content-addressed result cache
	// over partition/sweep response bodies. 0 disables caching entirely
	// — the zero Config serves exactly as it did before the cache
	// existed; this is the field's meaningful zero, so no sentinel is
	// needed. (cmd/roadpartd defaults its flag to 256 MiB.)
	CacheMaxBytes int64
	// CacheDir, when non-empty, persists cached results as
	// roadpart-cache/v1 snapshot files and warms the cache from them at
	// startup, so a restarted daemon keeps its hot set. Meaningful only
	// with CacheMaxBytes > 0.
	CacheDir string
	// JobWorkers bounds concurrently executing async-job attempts
	// (POST /v1/jobs). 0 selects the internal/jobs default (2). Job
	// attempts additionally pass through the same admission controller
	// as synchronous requests, so the two paths cannot oversubscribe
	// MaxInFlight between them.
	JobWorkers int
	// JobQueueDepth bounds active (non-terminal) async jobs; beyond it
	// submissions are rejected with 429. 0 selects the default (64).
	JobQueueDepth int
	// JobMaxAttempts is the per-job attempt budget before the terminal
	// dead-letter state. 0 selects the default (3).
	JobMaxAttempts int
	// JobAttemptTimeout bounds each job attempt's compute; 0 falls back
	// to DefaultTimeout (and to no deadline when that is also 0).
	JobAttemptTimeout time.Duration
	// JobRetryBase and JobRetryMax shape the capped exponential backoff
	// between job attempts (zeroes select 1s base, 1m cap). The jitter
	// is deterministic per job fingerprint — see internal/jobs.Backoff.
	JobRetryBase time.Duration
	JobRetryMax  time.Duration
	// JobDir, when non-empty, holds the roadpart-jobs/v1 write-ahead
	// journal: submissions and transitions are journaled, and a
	// restarted daemon replays incomplete jobs. Empty serves jobs
	// memory-only (a restart forgets them).
	JobDir string
	// JobNoSync skips the per-record journal fsync (tests; a power loss
	// may drop the trailing records).
	JobNoSync bool
	// Self is this daemon's own advertised base URL (http://host:port).
	// Setting it (or Peers) enables the sharded multi-daemon mode: every
	// content-addressed request is routed to the shard whose rendezvous
	// position owns its fingerprint (docs/DISTRIBUTED.md). Empty with an
	// empty Peers serves single-node, exactly as before peering existed.
	Self string
	// Peers lists the other shards' base URLs (Self is folded in
	// automatically, so the same list can be deployed to every shard).
	// All shards must agree on the membership — disagreement degrades to
	// extra hops and duplicated cache entries, never to wrong answers.
	Peers []string
	// PeerTimeout bounds one forwarded exchange (dial through response).
	// 0 selects MaxTimeout plus headroom, so a forwarded request
	// outlives the owner's longest allowed compute.
	PeerTimeout time.Duration
}

// service carries the server configuration into the handlers.
type service struct {
	cfg        Config
	slots      chan struct{}      // in-flight tokens; nil when admission is off
	queued     atomic.Int64       // requests waiting for a slot
	cache      *resultcache.Cache // nil when caching is off
	stream     stream             // the density stream (daemon mode)
	hub        *watchHub          // /v1/watch fan-out
	jobs       *jobs.Manager      // durable async jobs (always on)
	lat        latEWMA            // observed compute latency → Retry-After hints
	ring       *peers.Ring        // shard membership; nil when peering is off
	peerClient *peers.Client      // bounded transport for the forwarding hop
}

// New returns the service's HTTP handler with default configuration.
func New() http.Handler { return NewWith(Config{}) }

// NewWith returns the service's HTTP handler under cfg, panicking if
// CacheDir cannot be prepared (the only fallible setup); daemons that
// want the error instead use NewChecked.
func NewWith(cfg Config) http.Handler {
	h, err := NewChecked(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// NewChecked is NewWith with setup errors reported instead of panicking.
func NewChecked(cfg Config) (http.Handler, error) {
	return NewService(cfg)
}

// Service is the HTTP handler together with its lifecycle: daemons that
// shut down gracefully call Close so in-flight jobs checkpoint into the
// journal instead of being abandoned mid-attempt.
type Service struct {
	http.Handler
	svc *service
}

// NewService builds the service and exposes its lifecycle.
func NewService(cfg Config) (*Service, error) {
	s, err := newService(cfg)
	if err != nil {
		return nil, err
	}
	return &Service{Handler: s.handler(), svc: s}, nil
}

// Close drains the async-job subsystem: new submissions are refused
// with 503, retry timers stop, and interrupted attempts are journaled
// back to queued so a restarted daemon resumes them with a full budget.
// ctx bounds the wait for in-flight attempts.
func (sv *Service) Close(ctx context.Context) error {
	return sv.svc.jobs.Close(ctx)
}

func newService(cfg Config) (*service, error) {
	s := &service{cfg: cfg, hub: newWatchHub()}
	ring, pc, err := newPeering(cfg, s.maxTimeout)
	if err != nil {
		return nil, err
	}
	s.ring, s.peerClient = ring, pc
	if cfg.MaxInFlight > 0 {
		s.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	if cfg.CacheMaxBytes > 0 {
		c, err := resultcache.New(resultcache.Config{MaxBytes: cfg.CacheMaxBytes, Dir: cfg.CacheDir})
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	attemptTimeout := cfg.JobAttemptTimeout
	if attemptTimeout <= 0 {
		attemptTimeout = cfg.DefaultTimeout
	}
	m, err := jobs.Open(jobs.Config{
		Workers:        cfg.JobWorkers,
		QueueDepth:     cfg.JobQueueDepth,
		MaxAttempts:    cfg.JobMaxAttempts,
		AttemptTimeout: attemptTimeout,
		Retry:          jobs.Backoff{Base: cfg.JobRetryBase, Max: cfg.JobRetryMax},
		Dir:            cfg.JobDir,
		NoSync:         cfg.JobNoSync,
		Hooks:          testJobHooks,
	}, jobs.RunnerFunc(s.runJob))
	if err != nil {
		return nil, err
	}
	s.jobs = m
	return s, nil
}

// handler assembles the route table and middleware chain:
// instrument(recoverPanics(mux)). Accounting sees every request
// including recovered panics; admission control is no longer a
// middleware — each compute handler acquires a slot (s.acquire) only
// after its cache lookup misses, so cached responses never queue.
func (s *service) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", handleHealth)
	mux.HandleFunc("/v1/partition", s.handlePartition)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJobItem)
	mux.HandleFunc("/v1/render", handleRender)
	mux.HandleFunc("/v1/densities", s.handleDensities)
	mux.HandleFunc("/v1/watch", s.handleWatch)
	mux.HandleFunc("/v1/metrics", handleMetrics)
	mux.HandleFunc("/v1/stats", handleStats)
	return instrument(recoverPanics(mux))
}

// workers resolves a request-level override against the server default.
func (s *service) workers(req int) int {
	if req != 0 {
		return req
	}
	return s.cfg.Workers
}

// RenderRequest is the body of POST /v1/render: a network plus an
// optional assignment. The response is image/svg+xml — partitions when an
// assignment is given, densities otherwise.
type RenderRequest struct {
	Network *roadnet.Network `json:"network"`
	Assign  []int            `json:"assign,omitempty"`
	Title   string           `json:"title,omitempty"`
}

func handleRender(w http.ResponseWriter, r *http.Request) {
	var req RenderRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Network == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing network"))
		return
	}
	if err := req.Network.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Assign != nil && len(req.Assign) != len(req.Network.Segments) {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("%d assignments for %d segments", len(req.Assign), len(req.Network.Segments)))
		return
	}
	// Render into memory first so failures still produce a clean error
	// response instead of a truncated SVG.
	var buf bytes.Buffer
	var err error
	if req.Assign != nil {
		err = render.Partitions(&buf, req.Network, req.Assign, render.Options{Title: req.Title})
	} else {
		err = render.Densities(&buf, req.Network, render.Options{Title: req.Title})
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *service) handlePartition(w http.ResponseWriter, r *http.Request) {
	var req PartitionRequest
	raw, ok := s.readKeyed(w, r, &req)
	if !ok {
		return
	}
	cfg, err := s.partitionConfig(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Peer routing: the fingerprint's owner computes and caches this
	// result; an unreachable owner falls through to the local path.
	if s.forwardKeyed(w, r, resultcache.PartitionKey(req.Network, cfg).Sum, raw) {
		return
	}
	s.markShard(w)
	ctx, cancel, budget := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	compute := func(ctx context.Context) ([]byte, error) {
		return s.computePartition(ctx, req.Network, cfg)
	}
	if s.cache == nil {
		body, err := compute(ctx)
		if err != nil {
			s.writeComputeFailure(w, budget, err)
			return
		}
		writeJSONBody(w, body)
		return
	}
	// Tagging by (structure, density) fingerprints lets a density-stream
	// update invalidate exactly the entries its step made stale.
	body, cached, err := s.cache.GetOrComputeTagged(ctx,
		resultcache.PartitionKey(req.Network, cfg), resultcache.NetworkTag(req.Network), compute)
	if err != nil {
		s.writeComputeFailure(w, budget, err)
		return
	}
	w.Header().Set(CacheHeader, cacheState(cached))
	writeJSONBody(w, body)
}

// computePartition runs the full pipeline under an admission slot and
// returns the serialized PartitionResponse — the exact bytes the cache
// stores and every later hit replays.
func (s *service) computePartition(ctx context.Context, net *roadnet.Network, cfg core.Config) ([]byte, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	t0 := time.Now()
	res, err := core.PartitionCtx(ctx, net, cfg)
	if err != nil {
		return nil, err
	}
	s.lat.observe(time.Since(t0))
	return json.Marshal(PartitionResponse{
		Assign: res.Assign,
		K:      res.K,
		KPrime: res.KPrime,
		Report: res.Report,
		Timing: TimingJSON{
			Module1Ms: ms(res.Timing.Module1),
			Module2Ms: ms(res.Timing.Module2),
			Module3Ms: ms(res.Timing.Module3),
			TotalMs:   ms(res.Timing.Total),
		},
		Elapsed: time.Since(t0).String(),
	})
}

func (s *service) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	raw, ok := s.readKeyed(w, r, &req)
	if !ok {
		return
	}
	// The requested range (after defaulting) is the cacheable identity;
	// the supergraph clamp inside computeSweep is a deterministic
	// function of the same inputs, so hashing the pre-clamp range is
	// sound.
	cfg, kMin, kMax, err := s.sweepConfig(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if s.forwardKeyed(w, r, resultcache.SweepKey(req.Network, cfg, kMin, kMax).Sum, raw) {
		return
	}
	s.markShard(w)
	ctx, cancel, budget := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	compute := func(ctx context.Context) ([]byte, error) {
		return s.computeSweep(ctx, &req, cfg, kMin, kMax)
	}
	if s.cache == nil {
		body, err := compute(ctx)
		if err != nil {
			s.writeComputeFailure(w, budget, err)
			return
		}
		writeJSONBody(w, body)
		return
	}
	body, cached, err := s.cache.GetOrComputeTagged(ctx,
		resultcache.SweepKey(req.Network, cfg, kMin, kMax), resultcache.NetworkTag(req.Network), compute)
	if err != nil {
		s.writeComputeFailure(w, budget, err)
		return
	}
	w.Header().Set(CacheHeader, cacheState(cached))
	writeJSONBody(w, body)
}

// computeSweep runs modules 1–2 once and the k-sweep under an admission
// slot, returning the serialized SweepResponse.
func (s *service) computeSweep(ctx context.Context, req *SweepRequest, cfg core.Config, kMin, kMax int) ([]byte, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	t0 := time.Now()
	p, err := core.NewPipelineCtx(ctx, req.Network, cfg)
	if err != nil {
		return nil, err
	}
	if p.SG != nil && kMax > len(p.SG.Nodes) {
		kMax = len(p.SG.Nodes)
	}
	if kMax < kMin {
		return nil, fmt.Errorf("network supports no k in [%d,%d]", req.KMin, req.KMax)
	}
	best, sweep, err := p.BestKByANSCtx(ctx, kMin, kMax)
	if err != nil {
		return nil, err
	}
	s.lat.observe(time.Since(t0))
	resp := SweepResponse{BestK: best}
	for _, pt := range sweep {
		resp.Points = append(resp.Points, SweepPointJSON{K: pt.K, Report: pt.Result.Report})
	}
	return json.Marshal(resp)
}

func buildConfig(scheme string, seed uint64) (core.Config, error) {
	cfg := core.Config{Seed: seed}
	switch scheme {
	case "", "ASG":
		cfg.Scheme = core.ASG
	case "AG":
		cfg.Scheme = core.AG
	case "NG":
		cfg.Scheme = core.NG
	case "NSG":
		cfg.Scheme = core.NSG
	default:
		return cfg, fmt.Errorf("unknown scheme %q (want AG, NG, ASG or NSG)", scheme)
	}
	return cfg, nil
}

// CacheHeader is the response header reporting how a compute endpoint
// answered: "hit" (served from the result cache, including coalescing
// onto another request's in-flight compute) or "miss" (computed here).
// Absent when caching is disabled and on error responses.
const CacheHeader = "X-Roadpart-Cache"

// cacheState maps resultcache's cached flag to the header value.
func cacheState(cached bool) string {
	if cached {
		return "hit"
	}
	return "miss"
}

// allow enforces the single method a route supports, answering anything
// else with 405 and the Allow header RFC 9110 § 15.5.6 requires.
func allow(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use %s", method))
	return false
}

// readJSON decodes the request body, writing the error response itself
// and returning false on failure. It stream-decodes straight from the
// body — no copy — so it is the right reader everywhere the raw bytes
// are not needed afterwards; keyed routes that may forward to a peer
// use readKeyed instead.
func readJSON(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if !allow(w, r, http.MethodPost) {
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// readKeyed reads a keyed route's request. In sharded mode the body is
// buffered whole so the request can be proxied to the owning shard
// byte-identical (raw is non-nil); single-node mode keeps the zero-copy
// streaming decode and returns nil raw, which the forwarding helpers
// treat as "serve locally". Buffering only when a ring exists keeps the
// single-node hot path's allocation profile unchanged.
func (s *service) readKeyed(w http.ResponseWriter, r *http.Request, dst interface{}) ([]byte, bool) {
	if s.ring == nil {
		return nil, readJSON(w, r, dst)
	}
	raw, ok := readRaw(w, r)
	if !ok {
		return nil, false
	}
	return raw, decodeJSON(w, raw, dst)
}

// readRaw enforces POST and reads the bounded body whole. The
// forwarding layer needs the raw bytes: a proxied request must reach
// the owning shard byte-identical, not re-marshaled, so both shards
// serve literally the same document.
func readRaw(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if !allow(w, r, http.MethodPost) {
		return nil, false
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return nil, false
	}
	return raw, true
}

// decodeJSON is readJSON's decode half, over an already-read body.
func decodeJSON(w http.ResponseWriter, raw []byte, dst interface{}) bool {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONBody writes a pre-serialized 200 response. The framing —
// body then '\n' — reproduces json.Encoder.Encode exactly (Encode is
// Marshal plus a trailing newline), so a cached body is byte-identical
// on the wire to the writeJSON output it replaced.
func writeJSONBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	_, _ = w.Write([]byte{'\n'})
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
