package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"roadpart/internal/gen"
	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

func testNet(t *testing.T) *roadnet.Network {
	t.Helper()
	net, err := gen.City(gen.CityConfig{TargetIntersections: 100, TargetSegments: 180, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := traffic.SyntheticField(net, traffic.FieldConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := traffic.ApplySnapshot(net, snap); err != nil {
		t.Fatal(err)
	}
	return net
}

func post(t *testing.T, srv http.Handler, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	srv := New()
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "ok") {
		t.Fatal("healthz body wrong")
	}
	// Wrong method.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/healthz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST healthz status = %d", rec.Code)
	}
}

func TestPartitionEndpoint(t *testing.T) {
	srv := New()
	net := testNet(t)
	rec := post(t, srv, "/v1/partition", PartitionRequest{Network: net, K: 3, Scheme: "AG", Seed: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", rec.Code, rec.Body.String())
	}
	var resp PartitionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.K != 3 {
		t.Fatalf("K = %d, want 3", resp.K)
	}
	if len(resp.Assign) != len(net.Segments) {
		t.Fatalf("assign covers %d of %d segments", len(resp.Assign), len(net.Segments))
	}
	if resp.Report.ANS <= 0 {
		t.Fatalf("report missing: %+v", resp.Report)
	}
	if resp.Timing.TotalMs <= 0 {
		t.Fatal("timing missing")
	}
}

func TestPartitionEndpointDeterministic(t *testing.T) {
	srv := New()
	net := testNet(t)
	body := PartitionRequest{Network: net, K: 3, Scheme: "AG", Seed: 9}
	a := post(t, srv, "/v1/partition", body)
	b := post(t, srv, "/v1/partition", body)
	var ra, rb PartitionResponse
	json.Unmarshal(a.Body.Bytes(), &ra)
	json.Unmarshal(b.Body.Bytes(), &rb)
	for i := range ra.Assign {
		if ra.Assign[i] != rb.Assign[i] {
			t.Fatal("service should be deterministic in seed")
		}
	}
}

func TestPartitionEndpointErrors(t *testing.T) {
	srv := New()
	net := testNet(t)
	cases := []struct {
		name string
		body interface{}
		want int
	}{
		{"missing network", PartitionRequest{K: 3}, http.StatusBadRequest},
		{"bad scheme", PartitionRequest{Network: net, K: 3, Scheme: "XX"}, http.StatusBadRequest},
		{"bad k", PartitionRequest{Network: net, K: -1}, http.StatusUnprocessableEntity},
		{"unknown field", map[string]interface{}{"nope": 1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := post(t, srv, "/v1/partition", c.body)
		if rec.Code != c.want {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, rec.Code, c.want, rec.Body.String())
		}
		if !strings.Contains(rec.Body.String(), "error") {
			t.Errorf("%s: missing error envelope", c.name)
		}
	}
	// Invalid network payload.
	bad := testNet(t)
	bad.Segments[0].Length = -1
	rec := post(t, srv, "/v1/partition", PartitionRequest{Network: bad, K: 2})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("invalid network: status = %d", rec.Code)
	}
	// GET not allowed.
	get := httptest.NewRecorder()
	srv.ServeHTTP(get, httptest.NewRequest(http.MethodGet, "/v1/partition", nil))
	if get.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET partition: status = %d", get.Code)
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv := New()
	net := testNet(t)
	rec := post(t, srv, "/v1/sweep", SweepRequest{Network: net, KMin: 2, KMax: 5, Scheme: "ASG", Seed: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", rec.Code, rec.Body.String())
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) == 0 {
		t.Fatal("no sweep points")
	}
	if resp.BestK < 2 || resp.BestK > 5 {
		t.Fatalf("best k = %d", resp.BestK)
	}
	// BestK must be the ANS minimum among the points.
	var bestANS float64
	for _, p := range resp.Points {
		if p.K == resp.BestK {
			bestANS = p.Report.ANS
		}
	}
	for _, p := range resp.Points {
		if p.Report.ANS < bestANS {
			t.Fatal("best_k is not the ANS minimum")
		}
	}
}

func TestRenderEndpoint(t *testing.T) {
	srv := New()
	net := testNet(t)
	// Densities view.
	rec := post(t, srv, "/v1/render", RenderRequest{Network: net, Title: "densities"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "<svg") {
		t.Fatal("no SVG in body")
	}
	// Partition view.
	assign := make([]int, len(net.Segments))
	for i := range assign {
		assign[i] = i % 3
	}
	rec = post(t, srv, "/v1/render", RenderRequest{Network: net, Assign: assign})
	if rec.Code != http.StatusOK {
		t.Fatalf("partition render status = %d", rec.Code)
	}
	// Wrong-length assignment.
	rec = post(t, srv, "/v1/render", RenderRequest{Network: net, Assign: []int{1}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad assignment status = %d", rec.Code)
	}
	// Missing network.
	rec = post(t, srv, "/v1/render", RenderRequest{})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing network status = %d", rec.Code)
	}
}

func TestSweepEndpointDefaultsAndErrors(t *testing.T) {
	srv := New()
	net := testNet(t)
	rec := post(t, srv, "/v1/sweep", SweepRequest{Network: net})
	if rec.Code != http.StatusOK {
		t.Fatalf("defaults: status = %d (%s)", rec.Code, rec.Body.String())
	}
	rec = post(t, srv, "/v1/sweep", SweepRequest{})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing network: status = %d", rec.Code)
	}
}
