package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"roadpart/internal/obs"
	"roadpart/internal/resultcache"
	"roadpart/internal/roadnet"
	"roadpart/internal/temporal"
)

// This file is the daemon's streaming mode: POST /v1/densities feeds a
// long-lived temporal.Tracker full density vectors or sparse deltas, and
// GET /v1/watch is a Server-Sent Events feed of the repartition frames
// those updates produce. Where /v1/partition is stateless
// request/response, the density stream holds the network, its dual
// graph, the seed partition and the per-region caches across calls, so
// a small delta costs only the regions it touches (see
// docs/ARCHITECTURE.md § Streaming dataflow).

// Streaming observability. The tracker itself counts compute paths
// (roadpart_incremental_steps_total); these cover the transport.
var (
	watchSubscribers = obs.Default().Gauge("roadpart_watch_subscribers",
		"SSE clients currently connected to /v1/watch.")
	watchDropped = obs.Default().Counter("roadpart_watch_events_dropped_total",
		"Repartition events not delivered to a slow /v1/watch subscriber (its buffer was full; the client still sees every later event).")
)

// DensitiesRequest is the body of POST /v1/densities. The first call
// must carry the network plus a full densities vector; it establishes
// the stream and fixes the partitioning configuration. Later calls send
// either a full densities vector or a sparse updates list. A call that
// carries a network replaces the stream wholesale (the previous
// tracker's caches are discarded).
type DensitiesRequest struct {
	// Network establishes (or replaces) the streamed network. Required
	// on the first call; configuration fields below are read only
	// together with it.
	Network *roadnet.Network `json:"network,omitempty"`
	// Scheme is "AG", "NG", "ASG" or "NSG"; empty selects ASG.
	Scheme string `json:"scheme,omitempty"`
	// Mode is "distributed" (default: the seed frame partitions
	// globally, later frames re-split its regions) or "global".
	Mode string `json:"mode,omitempty"`
	// K fixes the global partition count; 0 selects it by the ANS
	// minimum.
	K    int    `json:"k,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	// DriftThreshold is temporal.Config.DriftThreshold: the changed
	// fraction of segments above which a step recomputes every region.
	// 0 selects 0.25, negative disables incremental reuse. Any value
	// yields bit-identical frames — the threshold trades work only.
	DriftThreshold float64 `json:"drift_threshold,omitempty"`

	// Densities is a full per-segment density vector. Exactly one of
	// Densities and Updates must be present.
	Densities []float64 `json:"densities,omitempty"`
	// Updates is a sparse density delta applied to the current vector.
	Updates roadnet.DensityDelta `json:"updates,omitempty"`
	// TimeoutMs bounds this step's compute, as on /v1/partition.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// RepartitionEvent is the document POST /v1/densities returns and
// GET /v1/watch pushes (as SSE event "repartition") for every frame the
// stream produces. Structure and Density are the %016x fingerprints of
// the network state the frame was computed from — the same pair that
// tags result-cache entries.
type RepartitionEvent struct {
	Seq       int            `json:"seq"`
	Structure string         `json:"structure"`
	Density   string         `json:"density"`
	Frame     temporal.Frame `json:"frame"`
}

// stream is the service's single density stream: one tracker at a time,
// steps serialized by the mutex (the stream is inherently ordered — two
// racing updates have no meaningful concurrent interleaving).
type stream struct {
	mu  sync.Mutex
	tr  *temporal.Tracker
	seq int // monotonically increasing across stream replacements
}

// watchHub fans repartition events out to SSE subscribers. Publishing
// never blocks: a subscriber whose buffer is full misses that event
// (counted) and resumes with the next one — a stalled client cannot
// stall the compute path.
type watchHub struct {
	mu   sync.Mutex
	subs map[chan []byte]struct{}
	last []byte // most recent event, replayed to new subscribers
}

func newWatchHub() *watchHub {
	return &watchHub{subs: make(map[chan []byte]struct{})}
}

func (h *watchHub) publish(doc []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.last = doc
	for ch := range h.subs {
		select {
		case ch <- doc:
		default:
			watchDropped.Inc()
		}
	}
}

// subscribe registers a new subscriber and returns its channel, the
// last published event (nil when none yet) and an idempotent cancel.
func (h *watchHub) subscribe() (<-chan []byte, []byte, func()) {
	ch := make(chan []byte, 16)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	last := h.last
	h.mu.Unlock()
	watchSubscribers.Add(1)
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs, ch)
			h.mu.Unlock()
			watchSubscribers.Add(-1)
		})
	}
	return ch, last, cancel
}

// buildMode maps the request's mode string to a temporal.Mode.
func buildMode(mode string) (temporal.Mode, error) {
	switch mode {
	case "", "distributed":
		return temporal.ModeDistributed, nil
	case "global":
		return temporal.ModeGlobal, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want distributed or global)", mode)
	}
}

// handleDensities advances the density stream by one step. Validation
// errors name the offending field (satellite of the streaming work: a
// wrong-length vector or out-of-range update index must say which field
// and which bound), compute errors follow the 408/429/499/503 mapping
// every compute endpoint shares.
func (s *service) handleDensities(w http.ResponseWriter, r *http.Request) {
	var req DensitiesRequest
	raw, ok := s.readKeyed(w, r, &req)
	if !ok {
		return
	}
	// The density stream is a stateful singleton: every step must land
	// on the same tracker, so the whole resource lives on the ring owner
	// of streamRouteKey. No local fallback — a step applied to a second
	// tracker would silently fork the stream — so an unreachable home is
	// a 502 and the client retries the same, still-consistent resource.
	if home := s.streamHome(r); home != "" {
		if !s.proxy(w, r, home, raw) {
			writeErr(w, http.StatusBadGateway,
				fmt.Errorf("density-stream home %s unreachable", home))
		}
		return
	}
	s.markShard(w)
	if req.Densities != nil && req.Updates != nil {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("densities and updates are mutually exclusive; send one per call"))
		return
	}
	if req.Densities == nil && req.Updates == nil {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("densities or updates: exactly one is required"))
		return
	}
	ctx, cancel, budget := s.requestContext(r, req.TimeoutMs)
	defer cancel()

	s.stream.mu.Lock()
	defer s.stream.mu.Unlock()
	if req.Network != nil {
		if err := req.Network.Validate(); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		cfg, err := buildConfig(req.Scheme, req.Seed)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		mode, err := buildMode(req.Mode)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		tr, err := temporal.NewTracker(req.Network, mode, temporal.Config{
			Scheme:         cfg.Scheme,
			K:              req.K,
			Seed:           req.Seed,
			DriftThreshold: req.DriftThreshold,
		})
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.stream.tr = tr
	}
	tr := s.stream.tr
	if tr == nil {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("network: required on the first call — no density stream is established"))
		return
	}
	if req.Densities != nil && len(req.Densities) != tr.Segments() {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("densities: %d values for %d segments", len(req.Densities), tr.Segments()))
		return
	}
	if req.Updates != nil {
		if tr.Steps() == 0 {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("updates: a new stream needs a full densities vector before sparse deltas"))
			return
		}
		if err := req.Updates.Validate(tr.Segments()); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}

	structHash, oldDens := tr.Fingerprints()
	release, err := s.acquire(ctx)
	if err != nil {
		s.writeComputeFailure(w, budget, err)
		return
	}
	var fr temporal.Frame
	if req.Densities != nil {
		fr, err = tr.Step(ctx, req.Densities)
	} else {
		fr, err = tr.ApplyDelta(ctx, req.Updates)
	}
	release()
	if err != nil {
		s.writeComputeFailure(w, budget, err)
		return
	}
	// The step superseded the previous density generation: cached
	// partition/sweep results computed from it can never be requested
	// under the new fingerprint, so drop them instead of letting dead
	// generations squat in the LRU budget.
	if _, newDens := tr.Fingerprints(); s.cache != nil && oldDens != 0 && newDens != oldDens {
		s.cache.InvalidateTag(resultcache.Tag(structHash, oldDens))
	}

	s.stream.seq++
	_, dens := tr.Fingerprints()
	doc, err := json.Marshal(RepartitionEvent{
		Seq:       s.stream.seq,
		Structure: fmt.Sprintf("%016x", structHash),
		Density:   fmt.Sprintf("%016x", dens),
		Frame:     fr,
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.hub.publish(doc)
	writeJSONBody(w, doc)
}

// watchHeartbeat paces the SSE keep-alive comments; a variable so the
// disconnect tests can tighten it.
var watchHeartbeat = 15 * time.Second

// handleWatch serves GET /v1/watch: a text/event-stream of repartition
// events. A new subscriber first receives the most recent event (so a
// dashboard connecting mid-stream renders immediately), then every
// event published while it stays connected, with comment keep-alives in
// between. The handler returns when the client disconnects.
func (s *service) handleWatch(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	// Subscriptions follow the stream to its home shard; the hop relays
	// the event stream unbuffered (proxyStream flushes per chunk).
	if home := s.streamHome(r); home != "" {
		s.proxyStream(w, r, home)
		return
	}
	s.markShard(w)
	// ResponseController reaches the Flusher through the instrumentation
	// middleware's Unwrap; a connection that cannot flush errors out of
	// the first Flush below and the handler just ends.
	rc := http.NewResponseController(w)
	ch, last, unsubscribe := s.hub.subscribe()
	defer unsubscribe()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// An immediate comment confirms the subscription even on a stream
	// that has produced no events yet.
	_, _ = fmt.Fprint(w, ": subscribed\n\n")
	send := func(doc []byte) {
		_, _ = fmt.Fprintf(w, "event: repartition\ndata: %s\n\n", doc)
	}
	if last != nil {
		send(last)
	}
	if rc.Flush() != nil {
		return
	}
	beat := time.NewTicker(watchHeartbeat)
	defer beat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case doc := <-ch:
			send(doc)
			if rc.Flush() != nil {
				return
			}
		case <-beat.C:
			_, _ = fmt.Fprint(w, ": keep-alive\n\n")
			if rc.Flush() != nil {
				return
			}
		}
	}
}
