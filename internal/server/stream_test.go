package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"roadpart/internal/roadnet"
)

// postEvent posts one density step and decodes the repartition event.
func postEvent(t *testing.T, srv http.Handler, req DensitiesRequest) RepartitionEvent {
	t.Helper()
	rec := post(t, srv, "/v1/densities", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/densities = %d body=%s", rec.Code, rec.Body.String())
	}
	var ev RepartitionEvent
	if err := json.Unmarshal(rec.Body.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestDensitiesStream(t *testing.T) {
	srv := New()
	net := testNet(t)
	d0 := net.Densities()

	ev := postEvent(t, srv, DensitiesRequest{Network: net, Scheme: "ASG", K: 4, Seed: 9, Densities: d0})
	if ev.Seq != 1 {
		t.Fatalf("seq = %d, want 1", ev.Seq)
	}
	if ev.Frame.Path != "full" {
		t.Fatalf("first frame path = %q, want full", ev.Frame.Path)
	}
	if len(ev.Frame.Assign) != len(net.Segments) {
		t.Fatalf("assign covers %d of %d segments", len(ev.Frame.Assign), len(net.Segments))
	}
	if ev.Density == "" || ev.Structure == "" {
		t.Fatal("event is missing fingerprints")
	}

	// A sparse delta advances the stream; the second frame is the first
	// re-split, so it recomputes every region — path reflects that
	// honestly. A third identical-delta... no: an update to the same
	// value changes nothing, so force distinct values.
	delta := roadnet.DensityDelta{{Segment: 0, Density: d0[0] + 1}}
	ev2 := postEvent(t, srv, DensitiesRequest{Updates: delta})
	if ev2.Seq != 2 {
		t.Fatalf("seq = %d, want 2", ev2.Seq)
	}
	// Now only segment 0's region is dirty: the step must take the
	// incremental path.
	delta2 := roadnet.DensityDelta{{Segment: 0, Density: d0[0] + 2}}
	ev3 := postEvent(t, srv, DensitiesRequest{Updates: delta2})
	if ev3.Frame.Path != "delta" {
		t.Fatalf("sparse-delta frame path = %q, want delta", ev3.Frame.Path)
	}
	if ev3.Density == ev2.Density {
		t.Fatal("density fingerprint did not advance")
	}
	// Replaying the same value verbatim changes nothing: reused path.
	ev4 := postEvent(t, srv, DensitiesRequest{Updates: delta2})
	if ev4.Frame.Path != "reused" {
		t.Fatalf("no-op frame path = %q, want reused", ev4.Frame.Path)
	}
}

// TestDensitiesValidation pins the named-field 400s the streaming
// boundary must produce — the regression tests for the wrong-length
// density-vector bug class.
func TestDensitiesValidation(t *testing.T) {
	srv := New()
	net := testNet(t)
	d0 := net.Densities()

	cases := []struct {
		name string
		req  DensitiesRequest
		want string // substring the 400 body must contain
	}{
		{"no stream", DensitiesRequest{Densities: d0},
			"network: required on the first call"},
		{"both fields", DensitiesRequest{Network: net, Densities: d0,
			Updates: roadnet.DensityDelta{{Segment: 0, Density: 1}}},
			"mutually exclusive"},
		{"neither field", DensitiesRequest{Network: net},
			"densities or updates"},
		{"delta before vector", DensitiesRequest{Network: net,
			Updates: roadnet.DensityDelta{{Segment: 0, Density: 1}}},
			"full densities vector"},
		{"wrong length", DensitiesRequest{Network: net, Densities: d0[:3]},
			"densities: 3 values for"},
		{"bad mode", DensitiesRequest{Network: net, Mode: "sideways", Densities: d0},
			"unknown mode"},
	}
	for _, tc := range cases {
		rec := post(t, srv, "/v1/densities", tc.req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body=%s)", tc.name, rec.Code, rec.Body.String())
			continue
		}
		if !strings.Contains(rec.Body.String(), tc.want) {
			t.Errorf("%s: body %q does not name the field (%q)", tc.name, rec.Body.String(), tc.want)
		}
	}

	// Out-of-range and non-finite updates, against an established stream.
	if rec := post(t, srv, "/v1/densities", DensitiesRequest{Network: net, Densities: d0}); rec.Code != http.StatusOK {
		t.Fatalf("establishing stream failed: %s", rec.Body.String())
	}
	rec := post(t, srv, "/v1/densities", DensitiesRequest{
		Updates: roadnet.DensityDelta{{Segment: len(net.Segments), Density: 1}}})
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "updates[0].segment") {
		t.Fatalf("out-of-range update = %d %q, want 400 naming updates[0].segment", rec.Code, rec.Body.String())
	}
	rec = post(t, srv, "/v1/densities", DensitiesRequest{
		Updates: roadnet.DensityDelta{{Segment: 0, Density: -1}}})
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "updates[0].density") {
		t.Fatalf("negative update = %d %q, want 400 naming updates[0].density", rec.Code, rec.Body.String())
	}
}

// TestDensitiesInvalidatesCache: after a density step supersedes a
// generation, a partition request for the OLD densities must recompute —
// a cache hit on the invalidated entry is exactly the staleness failure
// the fingerprint tags exist to prevent.
func TestDensitiesInvalidatesCache(t *testing.T) {
	srv := NewWith(Config{CacheMaxBytes: 8 << 20})
	net := testNet(t)
	d0 := net.Densities()

	// Establish the stream, then warm the cache for generation d0.
	postEvent(t, srv, DensitiesRequest{Network: net, Scheme: "AG", K: 3, Densities: d0})
	preq := PartitionRequest{Network: net, K: 3, Scheme: "AG", Seed: 1}
	if rec := post(t, srv, "/v1/partition", preq); rec.Header().Get(CacheHeader) != "miss" {
		t.Fatalf("first partition: cache = %q, want miss", rec.Header().Get(CacheHeader))
	}
	if rec := post(t, srv, "/v1/partition", preq); rec.Header().Get(CacheHeader) != "hit" {
		t.Fatalf("second partition: cache = %q, want hit", rec.Header().Get(CacheHeader))
	}

	// The stream moves on: generation d0 is superseded.
	postEvent(t, srv, DensitiesRequest{
		Updates: roadnet.DensityDelta{{Segment: 1, Density: d0[1] + 1}}})

	// The same request must now recompute (the entry was dropped), not
	// serve the stale generation from memory.
	if rec := post(t, srv, "/v1/partition", preq); rec.Header().Get(CacheHeader) != "miss" {
		t.Fatalf("post-invalidation partition: cache = %q, want miss (stale hit)", rec.Header().Get(CacheHeader))
	}
}

// readSSE consumes one SSE event (event: + data: lines) from the scanner.
func readSSE(t *testing.T, sc *bufio.Scanner) (event, data string) {
	t.Helper()
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			return event, data
		}
	}
	t.Fatalf("SSE stream ended early: %v", sc.Err())
	return "", ""
}

// TestWatchStreamsEvents exercises the full SSE loop over a real HTTP
// server: subscribe, receive the replayed last event, receive a live
// event, then disconnect — all under -race in the suite.
func TestWatchStreamsEvents(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	net := testNet(t)
	d0 := net.Densities()

	// One event exists before the watcher connects: it must be replayed.
	first := postEvent(t, srv, DensitiesRequest{Network: net, Scheme: "AG", K: 3, Densities: d0})

	resp, err := http.Get(ts.URL + "/v1/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	event, data := readSSE(t, sc)
	if event != "repartition" {
		t.Fatalf("replayed event type = %q", event)
	}
	var ev RepartitionEvent
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != first.Seq {
		t.Fatalf("replayed seq = %d, want %d", ev.Seq, first.Seq)
	}

	// A live step must arrive while connected. Post from a goroutine so
	// a delivery bug would fail the read below rather than deadlock.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postEvent(t, srv, DensitiesRequest{
			Updates: roadnet.DensityDelta{{Segment: 0, Density: d0[0] + 1}}})
	}()
	event, data = readSSE(t, sc)
	wg.Wait()
	if event != "repartition" {
		t.Fatalf("live event type = %q", event)
	}
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != first.Seq+1 {
		t.Fatalf("live seq = %d, want %d", ev.Seq, first.Seq+1)
	}
}

// TestWatchDisconnectReleasesSubscriber: closing the client connection
// must unregister the subscriber (no goroutine or hub leak). The test
// constructs the service directly so it can observe the hub.
func TestWatchDisconnectReleasesSubscriber(t *testing.T) {
	svc, err := newService(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/watch")
	if err != nil {
		t.Fatal(err)
	}
	// The subscription preamble proves the handler has registered.
	buf := make([]byte, 16)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	if got := subscriberCount(svc); got != 1 {
		t.Fatalf("subscribers after connect = %d, want 1", got)
	}
	resp.Body.Close()
	deadline := time.Now().Add(2 * time.Second)
	for subscriberCount(svc) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber not released after disconnect: %d", subscriberCount(svc))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func subscriberCount(s *service) int {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return len(s.hub.subs)
}
