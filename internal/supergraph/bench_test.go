package supergraph

import (
	"testing"

	"roadpart/internal/graph"
)

// benchGraph builds a 10k-node ring with 8 density stripes.
func benchGraph() (*graph.Graph, []float64) {
	const n = 10000
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1)
	}
	f := make([]float64, n)
	for i := range f {
		f[i] = float64(i/(n/8)) + float64(i%13)/1000
	}
	return g, f
}

func BenchmarkMine10k(b *testing.B) {
	g, f := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(g, f, MineOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStabilityProfile(b *testing.B) {
	g, f := benchGraph()
	sg, err := Mine(g, f, MineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sg.StabilityProfile(f)
	}
}
