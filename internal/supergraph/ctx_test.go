package supergraph

import (
	"context"
	"errors"
	"testing"
)

// TestMineCtxPreCancelled asserts mining stops at the first checkpoint
// under a done context, wrapping the context error.
func TestMineCtxPreCancelled(t *testing.T) {
	g, f := twoRegionGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MineCtx(ctx, g, f, MineOptions{KappaMax: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestMineCtxUncancelledMatchesMine pins that a live context leaves the
// mined supergraph identical, including under the stability-split loop.
func TestMineCtxUncancelledMatchesMine(t *testing.T) {
	g, f := twoRegionGraph()
	for _, opts := range []MineOptions{
		{KappaMax: 5},
		{KappaMax: 5, StabilityEps: 0.9999},
	} {
		want, err := Mine(g, f, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MineCtx(context.Background(), g, f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Nodes) != len(want.Nodes) {
			t.Fatalf("opts %+v: node counts differ: %d vs %d", opts, len(got.Nodes), len(want.Nodes))
		}
		for i := range want.Nodes {
			if len(got.Nodes[i].Members) != len(want.Nodes[i].Members) {
				t.Fatalf("opts %+v: supernode %d member counts differ", opts, i)
			}
			for j := range want.Nodes[i].Members {
				if got.Nodes[i].Members[j] != want.Nodes[i].Members[j] {
					t.Fatalf("opts %+v: supernode %d member %d differs", opts, i, j)
				}
			}
		}
	}
}
