package supergraph

import (
	"testing"
	"testing/quick"

	"roadpart/internal/graph"
)

// TestMineInvariantsProperty checks, for random connected graphs with
// random quantized features, the structural invariants of mining:
// members partition the node set, every supernode is internally connected,
// NodeOf is the inverse of Members, and superlinks only join supernodes
// that actually share a road-graph edge.
func TestMineInvariantsProperty(t *testing.T) {
	f := func(rawFeatures []uint8, extraEdges []uint16, nn uint8) bool {
		n := int(nn%40) + 5
		g := graph.New(n)
		// Spanning path keeps it connected; extra random edges vary the
		// topology.
		for i := 0; i+1 < n; i++ {
			g.AddEdge(i, i+1, 1)
		}
		for i := 0; i+1 < len(extraEdges); i += 2 {
			u, v := int(extraEdges[i])%n, int(extraEdges[i+1])%n
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		features := make([]float64, n)
		for i := range features {
			if i < len(rawFeatures) {
				features[i] = float64(rawFeatures[i]%8) / 10
			}
		}
		sg, err := Mine(g, features, MineOptions{KappaMax: 6, StabilityEps: 0.95})
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for s, sn := range sg.Nodes {
			if len(sn.Members) == 0 {
				return false
			}
			if !g.IsConnectedSubset(sn.Members) {
				return false
			}
			for _, v := range sn.Members {
				if seen[v] || sg.NodeOf[v] != s {
					return false
				}
				seen[v] = true
			}
		}
		for _, v := range seen {
			if !v {
				return false
			}
		}
		// Superlinks imply at least one road-graph edge between members.
		for p := 0; p < sg.Links.N(); p++ {
			for _, e := range sg.Links.Neighbors(p) {
				if e.To < p {
					continue
				}
				found := false
				for _, u := range sg.Nodes[p].Members {
					for _, ge := range g.Neighbors(u) {
						if sg.NodeOf[ge.To] == e.To {
							found = true
						}
					}
				}
				if !found {
					return false
				}
				if e.W < 0 || e.W > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStabilityBoundsProperty: η(ς) always lies in (0, 1] for
// non-negative features.
func TestStabilityBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		fs := make([]float64, len(raw))
		for i, v := range raw {
			fs[i] = float64(v) / 100
		}
		eta := Stability(fs)
		return eta > 0 && eta <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
