// Package supergraph implements road supergraph mining — the first
// (bottom-up) level of the paper's two-level partitioning (Section 4).
//
// Mining proceeds in the three stages of Algorithm 1: a sampled κ-sweep of
// 1-D k-means scored by the Moderated Clustering Gain shortlists candidate
// cluster counts; each shortlisted configuration is re-clustered on the
// full data and the one producing the fewest connected components (nodes
// grouped together and adjacent) wins, its components becoming supernodes;
// weighted superlinks then connect supernodes that share road-graph edges.
// The optional stability check of Algorithm 2 recursively splits loosely
// bonded supernodes.
package supergraph

import (
	"context"
	"fmt"
	"math"
	"sort"

	"roadpart/internal/cluster"
	"roadpart/internal/graph"
	"roadpart/internal/kmeans"
	"roadpart/internal/linalg"
	"roadpart/internal/obs"
)

// Stage timers for the module-2 mining stages (Algorithm 1–2); cached so
// recording is one atomic update per stage.
var (
	stageShortlist  = obs.StageTimer("mcg_shortlist")
	stageFullKMeans = obs.StageTimer("full_kmeans")
	stageStability  = obs.StageTimer("stability_split")
	stageMerge      = obs.StageTimer("supergraph_merge")
)

// Supernode is a set of road-graph nodes with similar densities that is
// connected in the road graph (Definition 6). Feature is the supernode's
// density value ς.f.
type Supernode struct {
	Members []int
	Feature float64
}

// Supergraph is the mined condensed graph (Definition 8): supernodes,
// weighted superlinks (as a graph.Graph over supernode indices), and the
// mapping from road-graph nodes to supernodes.
type Supergraph struct {
	Nodes []Supernode
	// Links is the superlink topology; edge weights are the ω of
	// Equation 3.
	Links *graph.Graph
	// NodeOf maps each road-graph node to its supernode index.
	NodeOf []int
	// Stats records how mining went, for reporting and Figure 5.
	Stats MineStats
}

// MineStats describes one mining run.
type MineStats struct {
	// Sweep holds the κ-sweep on the sample (MCG per κ, Figure 5's series).
	Sweep *cluster.Sweep
	// Shortlist is the set of κ that cleared the MCG threshold.
	Shortlist []int
	// ChosenKappa is the shortlisted κ with the fewest connected
	// components.
	ChosenKappa int
	// SupernodesBeforeStability counts components before Algorithm 2 ran.
	SupernodesBeforeStability int
	// Splits counts supernode splits performed by the stability check.
	Splits int
}

// WeightMode selects the superlink weighting.
type WeightMode int

const (
	// WeightEq3 evaluates Equation 3 literally. Because the summand
	// exp(−(ς_p.f−ς_q.f)²/2σ²) is constant across the links of one
	// supernode pair, the RMS over |L_pq| copies equals the single
	// Gaussian term, so the weight reduces to the feature similarity of
	// the two supernodes. This is the default, matching the paper.
	WeightEq3 WeightMode = iota
	// WeightPerLink replaces the supernode features inside the sum with
	// the features of each link's endpoint nodes, which realizes the
	// paper's *stated* intent that both the number of links and their
	// similarity matter. Kept as an ablation.
	WeightPerLink
)

// MineOptions configures mining. The zero value gives sensible defaults.
type MineOptions struct {
	// EpsTheta is the absolute MCG shortlisting threshold ε_θ. When 0,
	// the relative threshold EpsThetaFrac is used instead.
	EpsTheta float64
	// EpsThetaFrac shortlists κ whose MCG is at least this fraction of the
	// sweep maximum. 0 selects 0.8, mirroring the paper's hand-chosen
	// absolute thresholds, which sit just under the flat top of the MCG
	// curve (ε_θ = 2000 on M1 ≈ 0.86 of that curve's maximum). A higher
	// fraction risks shortlisting only the far tail when the sampled
	// curve has a late bump, which inflates the supernode count.
	EpsThetaFrac float64
	// KappaMax bounds the sweep; 0 selects 25.
	KappaMax int
	// SampleSize caps the sweep sample; 0 selects 2000.
	SampleSize int
	// StabilityEps is ε_η of Algorithm 2 in [0,1]; 0 disables the
	// stability check (the paper's ASG configuration).
	StabilityEps float64
	// Weighting selects the superlink weight formula.
	Weighting WeightMode
	// Seed drives sampling.
	Seed uint64
}

// Mine builds the road supergraph of road graph g whose node features
// (densities) are given by features. It implements Algorithm 1 end to end,
// with the optional Algorithm 2 stability pass.
func Mine(g *graph.Graph, features []float64, opts MineOptions) (*Supergraph, error) {
	return MineCtx(context.Background(), g, features, opts)
}

// MineCtx is Mine with cooperative cancellation. ctx is observed between
// the work items of every mining stage — each κ of the sampled shortlist
// sweep, each shortlisted κ's full-data clustering, and each supernode
// pop of the stability-split loop — so cancellation latency is bounded by
// one clustering run. With an uncancelled ctx the mined supergraph is
// bit-identical to Mine's.
func MineCtx(ctx context.Context, g *graph.Graph, features []float64, opts MineOptions) (*Supergraph, error) {
	n := g.N()
	if len(features) != n {
		return nil, fmt.Errorf("supergraph: %d features for %d nodes", len(features), n)
	}
	if n == 0 {
		return nil, fmt.Errorf("supergraph: empty road graph")
	}
	if opts.StabilityEps < 0 || opts.StabilityEps > 1 {
		return nil, fmt.Errorf("supergraph: stability threshold %v outside [0,1]", opts.StabilityEps)
	}

	// Stage 1: sampled κ-sweep, shortlist by MCG (Alg. 1 lines 3–9).
	spShortlist := stageShortlist.Start()
	sw, err := cluster.SweepKappaCtx(ctx, features, cluster.SweepOptions{
		KappaMax:   opts.KappaMax,
		SampleSize: opts.SampleSize,
		Seed:       opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	eps := opts.EpsTheta
	if eps == 0 {
		frac := opts.EpsThetaFrac
		if frac == 0 {
			frac = 0.8
		}
		maxMCG := math.Inf(-1)
		for _, p := range sw.Points {
			if p.Stats.MCG > maxMCG {
				maxMCG = p.Stats.MCG
			}
		}
		eps = frac * maxMCG
	}
	shortlist := sw.Shortlist(eps)
	spShortlist.End()

	// Stage 2: full-data clustering per shortlisted κ; fewest connected
	// components wins (Alg. 1 lines 10–16).
	// Every candidate κ clusters and labels into reused scratch; only the
	// best configuration so far is copied out, so the loop's steady-state
	// allocations are bounded by the number of improvements, not by the
	// shortlist length.
	spKMeans := stageFullKMeans.Start()
	bestComp := -1
	var bestAssign, bestLabels []int
	var bestMeans []float64
	chosen := 0
	var ks kmeans.Scratch
	labels := linalg.GetInts(n)
	defer linalg.PutInts(labels)
	for _, kappa := range shortlist {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("supergraph: full clustering interrupted at κ=%d: %w", kappa, err)
		}
		res, err := ks.OneD(features, kappa, 0)
		if err != nil {
			return nil, fmt.Errorf("supergraph: κ=%d: %w", kappa, err)
		}
		count := g.GroupComponentsInto(res.Assign, labels)
		if bestComp < 0 || count < bestComp {
			bestComp = count
			bestLabels = append(bestLabels[:0], labels...)
			bestAssign = append(bestAssign[:0], res.Assign...)
			bestMeans = bestMeans[:0]
			for c := 0; c < kappa; c++ {
				bestMeans = append(bestMeans, res.Mean1(c))
			}
			chosen = kappa
		}
	}
	spKMeans.End()

	// Create supernodes (Alg. 1 lines 17–20): members from components,
	// feature = the k-means cluster mean of the component's cluster.
	spMerge := stageMerge.Start()
	nodes := make([]Supernode, bestComp)
	for v := 0; v < n; v++ {
		s := bestLabels[v]
		nodes[s].Members = append(nodes[s].Members, v)
	}
	for s := range nodes {
		rep := nodes[s].Members[0]
		nodes[s].Feature = bestMeans[bestAssign[rep]]
	}

	stats := MineStats{
		Sweep:                     sw,
		Shortlist:                 shortlist,
		ChosenKappa:               chosen,
		SupernodesBeforeStability: bestComp,
	}
	spMerge.End()

	// Optional stability pass (Algorithm 2).
	if opts.StabilityEps > 0 {
		spStab := stageStability.Start()
		var err error
		nodes, stats.Splits, err = stabilize(ctx, g, features, nodes, opts.StabilityEps)
		spStab.End()
		if err != nil {
			return nil, err
		}
	}

	// Superlink construction accrues to the merge stage: it completes the
	// supergraph assembly of Alg. 1 (a Timer accumulates across spans).
	spLinks := stageMerge.Start()
	sg := &Supergraph{Nodes: nodes, NodeOf: make([]int, n), Stats: stats}
	for s, sn := range sg.Nodes {
		for _, v := range sn.Members {
			sg.NodeOf[v] = s
		}
	}
	if err := sg.buildLinks(g, features, opts.Weighting); err != nil {
		return nil, err
	}
	spLinks.End()
	return sg, nil
}

// Stability returns the stability measure η(ς) of Equation 2 for a
// supernode with the given member features: the average over members of
// exp(−|(f+1)/(μ+1) − 1|), 1 when every member sits at the mean.
func Stability(memberFeatures []float64) float64 {
	if len(memberFeatures) == 0 {
		return 1
	}
	var mu float64
	for _, f := range memberFeatures {
		mu += f
	}
	mu /= float64(len(memberFeatures))
	var s float64
	for _, f := range memberFeatures {
		s += math.Exp(-math.Abs((f+1)/(mu+1) - 1))
	}
	return s / float64(len(memberFeatures))
}

// stabilize runs Algorithm 2: every supernode below the threshold is split
// at its member-feature mean into a ≤mean and a >mean part, each part then
// re-split into connected components (the paper's split can disconnect a
// supernode, which would violate condition C.2 downstream; component
// extraction restores the invariant at no asymptotic cost), and the parts
// are pushed back for re-checking, LIFO, until everything is stable.
// ctx is observed once per popped supernode; on cancellation the partial
// split state is discarded and the context error returned.
func stabilize(ctx context.Context, g *graph.Graph, features []float64, nodes []Supernode, epsEta float64) ([]Supernode, int, error) {
	stack := make([]Supernode, len(nodes))
	copy(stack, nodes)
	var out []Supernode
	splits := 0
	// Pop-loop scratch: the feature and half buffers are reused across
	// pops, and the generation-stamped membership arrays let every
	// component split run without clearing (or reallocating) O(n) state.
	var fsBuf []float64
	var preBuf, postBuf []int
	inStamp := linalg.GetInts(g.N())
	seenStamp := linalg.GetInts(g.N())
	defer linalg.PutInts(inStamp)
	defer linalg.PutInts(seenStamp)
	gen := 0
	for len(stack) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, 0, fmt.Errorf("supergraph: stability split interrupted: %w", err)
		}
		sn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		if cap(fsBuf) < len(sn.Members) {
			fsBuf = make([]float64, len(sn.Members))
		}
		fs := fsBuf[:len(sn.Members)]
		var mu float64
		for i, v := range sn.Members {
			fs[i] = features[v]
			mu += features[v]
		}
		mu /= float64(len(sn.Members))

		if Stability(fs) >= epsEta || len(sn.Members) == 1 {
			sn.Feature = mu // stabilized supernodes adopt their member mean
			out = append(out, sn)
			continue
		}

		pre, post := preBuf[:0], postBuf[:0]
		for i, v := range sn.Members {
			if fs[i] <= mu {
				pre = append(pre, v)
			} else {
				post = append(post, v)
			}
		}
		preBuf, postBuf = pre, post
		if len(pre) == 0 || len(post) == 0 {
			// All members at the mean yet unstable cannot happen (η would
			// be 1), but guard against float edge cases.
			sn.Feature = mu
			out = append(out, sn)
			continue
		}
		splits++
		for _, part := range [][]int{pre, post} {
			gen++
			for _, comp := range splitComponents(g, part, inStamp, seenStamp, gen) {
				stack = append(stack, Supernode{Members: comp})
			}
		}
	}
	return out, splits, nil
}

// splitComponents returns the connected components of the subgraph of g
// induced by members. The in/seen arrays are generation-stamped
// membership marks (value == gen means set): passing a fresh gen each
// call makes prior contents irrelevant without any clearing, so the only
// allocations are the component slices themselves, which the caller
// keeps as supernode member lists.
func splitComponents(g *graph.Graph, members []int, in, seen []int, gen int) [][]int {
	for _, v := range members {
		in[v] = gen
	}
	var comps [][]int
	for _, s := range members {
		if seen[s] == gen {
			continue
		}
		comp := []int{s}
		seen[s] = gen
		for q := 0; q < len(comp); q++ {
			for _, e := range g.Neighbors(comp[q]) {
				if in[e.To] == gen && seen[e.To] != gen {
					seen[e.To] = gen
					comp = append(comp, e.To)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// buildLinks establishes weighted superlinks (Alg. 1 lines 21–25,
// Equation 3).
func (sg *Supergraph) buildLinks(g *graph.Graph, features []float64, mode WeightMode) error {
	ns := len(sg.Nodes)
	sg.Links = graph.New(ns)

	// Global variance of supernode features about their mean (σ²(ς)).
	fs := make([]float64, ns)
	var mu float64
	for i, sn := range sg.Nodes {
		fs[i] = sn.Feature
		mu += sn.Feature
	}
	mu /= float64(ns)
	var sigma2 float64
	for _, f := range fs {
		d := f - mu
		sigma2 += d * d
	}
	sigma2 /= float64(ns)

	type pairKey struct{ p, q int }
	linkCount := map[pairKey]int{}
	perLinkSum := map[pairKey]float64{} // Σ exp(...)² with node features
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if e.To <= u {
				continue
			}
			p, q := sg.NodeOf[u], sg.NodeOf[e.To]
			if p == q {
				continue
			}
			if p > q {
				p, q = q, p
			}
			k := pairKey{p, q}
			linkCount[k]++
			if mode == WeightPerLink {
				sim := gaussianSim(features[u], features[e.To], sigma2)
				perLinkSum[k] += sim * sim
			}
		}
	}

	// Insert superlinks in sorted pair order so adjacency lists — and
	// everything downstream that walks them — are deterministic run to
	// run (map iteration order is randomized in Go).
	keys := make([]pairKey, 0, len(linkCount))
	for k := range linkCount {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].p != keys[j].p {
			return keys[i].p < keys[j].p
		}
		return keys[i].q < keys[j].q
	})
	for _, k := range keys {
		var w float64
		switch mode {
		case WeightPerLink:
			w = math.Sqrt(perLinkSum[k] / float64(linkCount[k]))
		default:
			// Equation 3: RMS of |L_pq| identical Gaussian terms — equal
			// to the Gaussian similarity of the supernode features.
			w = gaussianSim(sg.Nodes[k.p].Feature, sg.Nodes[k.q].Feature, sigma2)
		}
		if err := sg.Links.AddEdge(k.p, k.q, w); err != nil {
			return err
		}
	}
	return nil
}

// gaussianSim is exp(−(a−b)²/(2σ²)), with the degenerate σ²=0 case mapped
// to 1 for equal features and 0 otherwise.
func gaussianSim(a, b, sigma2 float64) float64 {
	if sigma2 == 0 {
		if a == b {
			return 1
		}
		return 0
	}
	d := a - b
	return math.Exp(-d * d / (2 * sigma2))
}

// ExpandAssign maps a partition assignment over supernodes to one over the
// original road-graph nodes.
func (sg *Supergraph) ExpandAssign(superAssign []int) ([]int, error) {
	if len(superAssign) != len(sg.Nodes) {
		return nil, fmt.Errorf("supergraph: assignment length %d != %d supernodes", len(superAssign), len(sg.Nodes))
	}
	out := make([]int, len(sg.NodeOf))
	for v, s := range sg.NodeOf {
		out[v] = superAssign[s]
	}
	return out, nil
}

// Features returns the supernode feature vector.
func (sg *Supergraph) Features() []float64 {
	fs := make([]float64, len(sg.Nodes))
	for i, sn := range sg.Nodes {
		fs[i] = sn.Feature
	}
	return fs
}

// StabilityProfile returns η(ς) for every supernode (Figure 6's series),
// computed from the road-graph features.
func (sg *Supergraph) StabilityProfile(features []float64) []float64 {
	out := make([]float64, len(sg.Nodes))
	for i, sn := range sg.Nodes {
		fs := make([]float64, len(sn.Members))
		for j, v := range sn.Members {
			fs[j] = features[v]
		}
		out[i] = Stability(fs)
	}
	return out
}
