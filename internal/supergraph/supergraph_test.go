package supergraph

import (
	"math"
	"testing"

	"roadpart/internal/graph"
)

// twoRegionGraph builds a path graph whose first half has low densities
// and second half high densities — the canonical two-supernode case.
func twoRegionGraph() (*graph.Graph, []float64) {
	const n = 20
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	f := make([]float64, n)
	for i := range f {
		if i < n/2 {
			f[i] = 0.01 + 0.001*float64(i)
		} else {
			f[i] = 0.10 + 0.001*float64(i)
		}
	}
	return g, f
}

func TestMineTwoRegions(t *testing.T) {
	g, f := twoRegionGraph()
	sg, err := Mine(g, f, MineOptions{KappaMax: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.Nodes) != 2 {
		t.Fatalf("supernodes = %d, want 2", len(sg.Nodes))
	}
	// Members must partition the node set.
	total := 0
	for _, sn := range sg.Nodes {
		total += len(sn.Members)
	}
	if total != g.N() {
		t.Fatalf("members cover %d of %d nodes", total, g.N())
	}
	// NodeOf must be consistent with Members.
	for s, sn := range sg.Nodes {
		for _, v := range sn.Members {
			if sg.NodeOf[v] != s {
				t.Fatalf("NodeOf[%d] = %d, want %d", v, sg.NodeOf[v], s)
			}
		}
	}
	// One superlink between the two supernodes.
	if sg.Links.N() != 2 || sg.Links.M() != 1 {
		t.Fatalf("links = %d nodes / %d edges, want 2/1", sg.Links.N(), sg.Links.M())
	}
	// Supernodes must be internally connected.
	for s, sn := range sg.Nodes {
		if !g.IsConnectedSubset(sn.Members) {
			t.Fatalf("supernode %d disconnected", s)
		}
	}
}

func TestMineSplitsDisconnectedClusters(t *testing.T) {
	// Same density at both ends of a path with a different middle: the
	// density cluster {ends} is disconnected and must become two
	// supernodes.
	g := graph.New(9)
	for i := 0; i+1 < 9; i++ {
		g.AddEdge(i, i+1, 1)
	}
	f := []float64{0.01, 0.01, 0.01, 0.2, 0.2, 0.2, 0.01, 0.01, 0.01}
	sg, err := Mine(g, f, MineOptions{KappaMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.Nodes) != 3 {
		t.Fatalf("supernodes = %d, want 3 (low, high, low)", len(sg.Nodes))
	}
	for s, sn := range sg.Nodes {
		if !g.IsConnectedSubset(sn.Members) {
			t.Fatalf("supernode %d disconnected", s)
		}
	}
}

func TestStabilityMeasure(t *testing.T) {
	// All members at the mean → η = 1.
	if s := Stability([]float64{5, 5, 5}); math.Abs(s-1) > 1e-15 {
		t.Fatalf("uniform stability = %v, want 1", s)
	}
	// Spread members → η < 1.
	if s := Stability([]float64{0, 10}); s >= 1 {
		t.Fatalf("spread stability = %v, want < 1", s)
	}
	// Wider spread is less stable.
	if Stability([]float64{4, 6}) <= Stability([]float64{0, 10}) {
		t.Fatal("tighter supernode should be more stable")
	}
	// Empty and singleton supernodes are trivially stable.
	if Stability(nil) != 1 || Stability([]float64{3}) != 1 {
		t.Fatal("degenerate supernodes should have stability 1")
	}
}

func TestMineStabilityCheckSplits(t *testing.T) {
	// A graph whose optimal clustering lumps dissimilar nodes: force a
	// split with a high stability threshold and verify more supernodes.
	g, f := twoRegionGraph()
	loose, err := Mine(g, f, MineOptions{KappaMax: 5})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Mine(g, f, MineOptions{KappaMax: 5, StabilityEps: 0.9999})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Nodes) <= len(loose.Nodes) {
		t.Fatalf("strict threshold should split: %d vs %d supernodes", len(strict.Nodes), len(loose.Nodes))
	}
	if strict.Stats.Splits == 0 {
		t.Fatal("expected recorded splits")
	}
	// All resulting supernodes stable at the threshold.
	for _, eta := range strict.StabilityProfile(f) {
		if eta < 0.9999 && eta != 1 {
			t.Fatalf("unstable supernode survived: η=%v", eta)
		}
	}
	// Members still partition the graph and stay connected.
	total := 0
	for s, sn := range strict.Nodes {
		total += len(sn.Members)
		if !g.IsConnectedSubset(sn.Members) {
			t.Fatalf("supernode %d disconnected after stability pass", s)
		}
	}
	if total != g.N() {
		t.Fatalf("stability pass lost nodes: %d of %d", total, g.N())
	}
}

func TestMineStabilityOneYieldsFinest(t *testing.T) {
	// ε_η = 1 accepts only exact-feature supernodes: with all-distinct
	// features every supernode is a single node (the paper's AG limit).
	g, f := twoRegionGraph()
	sg, err := Mine(g, f, MineOptions{KappaMax: 5, StabilityEps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.Nodes) != g.N() {
		t.Fatalf("ε_η=1 with distinct features should give %d supernodes, got %d", g.N(), len(sg.Nodes))
	}
}

func TestSuperlinkWeightEq3(t *testing.T) {
	g, f := twoRegionGraph()
	sg, err := Mine(g, f, MineOptions{KappaMax: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Equation 3 reduces to the Gaussian of the feature gap.
	w := sg.Links.Neighbors(0)[0].W
	if w <= 0 || w >= 1 {
		t.Fatalf("superlink weight %v outside (0,1)", w)
	}
	fs := sg.Features()
	mu := (fs[0] + fs[1]) / 2
	sigma2 := ((fs[0]-mu)*(fs[0]-mu) + (fs[1]-mu)*(fs[1]-mu)) / 2
	want := math.Exp(-(fs[0] - fs[1]) * (fs[0] - fs[1]) / (2 * sigma2))
	if math.Abs(w-want) > 1e-12 {
		t.Fatalf("weight = %v, want %v", w, want)
	}
}

func TestSuperlinkWeightPerLinkDiffers(t *testing.T) {
	g, f := twoRegionGraph()
	eq3, err := Mine(g, f, MineOptions{KappaMax: 5})
	if err != nil {
		t.Fatal(err)
	}
	per, err := Mine(g, f, MineOptions{KappaMax: 5, Weighting: WeightPerLink})
	if err != nil {
		t.Fatal(err)
	}
	w1 := eq3.Links.Neighbors(0)[0].W
	w2 := per.Links.Neighbors(0)[0].W
	if w1 == w2 {
		t.Fatal("per-link weighting should differ from Eq. 3 on this data")
	}
	if w2 < 0 || w2 > 1 {
		t.Fatalf("per-link weight %v outside [0,1]", w2)
	}
}

func TestExpandAssign(t *testing.T) {
	g, f := twoRegionGraph()
	sg, err := Mine(g, f, MineOptions{KappaMax: 5})
	if err != nil {
		t.Fatal(err)
	}
	full, err := sg.ExpandAssign([]int{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range full {
		want := 7
		if sg.NodeOf[v] == 1 {
			want = 9
		}
		if p != want {
			t.Fatalf("expanded[%d] = %d, want %d", v, p, want)
		}
	}
	if _, err := sg.ExpandAssign([]int{1}); err == nil {
		t.Fatal("wrong-length assignment should error")
	}
}

func TestMineErrors(t *testing.T) {
	g, f := twoRegionGraph()
	if _, err := Mine(g, f[:3], MineOptions{}); err == nil {
		t.Fatal("feature length mismatch should error")
	}
	if _, err := Mine(graph.New(0), nil, MineOptions{}); err == nil {
		t.Fatal("empty graph should error")
	}
	if _, err := Mine(g, f, MineOptions{StabilityEps: 1.5}); err == nil {
		t.Fatal("out-of-range threshold should error")
	}
}

func TestMineRecordsStats(t *testing.T) {
	g, f := twoRegionGraph()
	sg, err := Mine(g, f, MineOptions{KappaMax: 6})
	if err != nil {
		t.Fatal(err)
	}
	st := sg.Stats
	if st.Sweep == nil || len(st.Sweep.Points) == 0 {
		t.Fatal("sweep not recorded")
	}
	if len(st.Shortlist) == 0 {
		t.Fatal("shortlist empty")
	}
	if st.ChosenKappa < 2 {
		t.Fatalf("chosen κ = %d", st.ChosenKappa)
	}
	if st.SupernodesBeforeStability != len(sg.Nodes) {
		t.Fatal("no stability pass ran, counts should match")
	}
}
