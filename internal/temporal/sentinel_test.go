package temporal

import (
	"testing"

	"roadpart/internal/core"
)

// KeepANS = 0 selects the 0.8 default; "never re-split" is spelled as a
// negative threshold (ANS is non-negative). These tests pin both halves.

func TestDefaultsPreserveNegativeKeepANS(t *testing.T) {
	cfg := Config{KeepANS: -1}
	cfg.defaults()
	if cfg.KeepANS != -1 {
		t.Fatalf("defaults rewrote KeepANS to %v, want -1 preserved", cfg.KeepANS)
	}
	if cfg.KMax != 10 || cfg.SubKMax != 4 {
		t.Fatalf("defaults: KMax=%d SubKMax=%d, want 10 and 4", cfg.KMax, cfg.SubKMax)
	}
	zero := Config{}
	zero.defaults()
	if zero.KeepANS != 0.8 {
		t.Fatalf("zero KeepANS selected %v, want default 0.8", zero.KeepANS)
	}
}

func TestDistributedNegativeKeepANSFreezesSeedRegions(t *testing.T) {
	net, snaps := simCity(t)
	frames, err := Run(net, snaps, []int{2, 5, 9}, ModeDistributed,
		Config{Scheme: core.ASG, Seed: 1, KeepANS: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("frames = %d, want 3", len(frames))
	}
	// With re-splitting disabled every later frame must reproduce the
	// seed frame's regions exactly.
	seed := frames[0].Assign
	for i := 1; i < len(frames); i++ {
		if len(frames[i].Assign) != len(seed) {
			t.Fatalf("frame %d covers %d segments, seed %d", i, len(frames[i].Assign), len(seed))
		}
		for v := range seed {
			if frames[i].Assign[v] != seed[v] {
				t.Fatalf("frame %d reassigned segment %d despite KeepANS < 0", i, v)
			}
		}
		if frames[i].ARIvsPrev != 1 {
			t.Fatalf("frame %d ARI = %v, want 1 for frozen regions", i, frames[i].ARIvsPrev)
		}
	}
}
