// Package temporal implements repeated congestion-based re-partitioning
// over time, including the distributed regime the paper proposes in
// Section 6.4: partition the whole network once, then re-partition each
// resulting region independently as congestion evolves — cheap enough for
// real time once regions are M1-sized or smaller.
package temporal

import (
	"fmt"
	"time"

	"roadpart/internal/core"
	"roadpart/internal/graph"
	"roadpart/internal/metrics"
	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

// Mode selects the re-partitioning regime.
type Mode int

const (
	// ModeGlobal re-partitions the full network at every timestamp.
	ModeGlobal Mode = iota
	// ModeDistributed partitions the full network once, then
	// re-partitions each region independently on later snapshots
	// (Section 6.4's proposal for real-time use).
	ModeDistributed
)

// Config tunes the tracker.
type Config struct {
	// Scheme is the partitioning scheme for every (re-)partition.
	Scheme core.Scheme
	// K fixes the global partition count; 0 selects it by the ANS
	// minimum over [2, KMax].
	K int
	// KMax bounds automatic k selection. 0 selects 10.
	KMax int
	// SubKMax bounds the per-region split in distributed mode (each
	// region may re-split into up to SubKMax parts, or stay whole when
	// no split scores below KeepANS). 0 selects 4; a bound below 2 is
	// meaningless, so no sentinel exists.
	SubKMax int
	// KeepANS is the ANS threshold above which a region refuses to
	// re-split (its best split has too little contrast). 0 selects 0.8;
	// any negative value means "never re-split" — every region keeps its
	// seed-frame shape, which a literal 0 cannot express because 0
	// selects the default. (ANS is non-negative, so thresholds at or
	// below 0 are all equivalent.)
	KeepANS float64
	// Seed drives all randomized stages.
	Seed uint64
}

func (c *Config) defaults() {
	if c.KMax == 0 {
		c.KMax = 10
	}
	if c.SubKMax == 0 {
		c.SubKMax = 4
	}
	if c.KeepANS == 0 {
		c.KeepANS = 0.8
	}
}

// Frame is the partitioning state at one timestamp.
type Frame struct {
	// Index of the snapshot this frame was computed from.
	Snapshot int
	// Assign is the partition per road segment.
	Assign []int
	// K is the partition count.
	K int
	// Report carries the quality metrics under this frame's densities.
	Report metrics.Report
	// ARIvsPrev measures agreement with the previous frame's partition
	// (1 on the first frame).
	ARIvsPrev float64
	// Elapsed is the wall-clock cost of producing this frame.
	Elapsed time.Duration
}

// Run re-partitions net for each of the selected snapshot indices and
// returns one frame per index, in order.
func Run(net *roadnet.Network, snaps []traffic.Snapshot, at []int, mode Mode, cfg Config) ([]Frame, error) {
	cfg.defaults()
	if len(at) == 0 {
		return nil, fmt.Errorf("temporal: no snapshot indices")
	}
	for _, t := range at {
		if t < 0 || t >= len(snaps) {
			return nil, fmt.Errorf("temporal: snapshot index %d outside %d snapshots", t, len(snaps))
		}
	}
	g, err := roadnet.DualGraph(net)
	if err != nil {
		return nil, err
	}

	var frames []Frame
	var prev, seedAssign []int
	for i, t := range at {
		f := []float64(snaps[t])
		t0 := time.Now()
		var assign []int
		if mode == ModeDistributed && i > 0 {
			// Re-partition the seed frame's regions, not the previous
			// refinement — otherwise splits compound round over round.
			assign, err = repartitionRegions(g, f, seedAssign, cfg)
		} else {
			assign, err = partitionGlobal(g, f, cfg)
			if i == 0 {
				seedAssign = assign
			}
		}
		if err != nil {
			return nil, fmt.Errorf("temporal: snapshot %d: %w", t, err)
		}
		elapsed := time.Since(t0)

		rep, err := metrics.Evaluate(f, assign, g)
		if err != nil {
			return nil, err
		}
		ari := 1.0
		if prev != nil {
			if ari, err = metrics.ARI(prev, assign); err != nil {
				return nil, err
			}
		}
		frames = append(frames, Frame{
			Snapshot:  t,
			Assign:    assign,
			K:         rep.K,
			Report:    rep,
			ARIvsPrev: ari,
			Elapsed:   elapsed,
		})
		prev = assign
	}
	return frames, nil
}

// partitionGlobal partitions the whole graph, selecting k automatically
// when cfg.K is zero.
func partitionGlobal(g *graph.Graph, f []float64, cfg Config) ([]int, error) {
	p, err := core.NewPipelineFromGraph(g, f, core.Config{Scheme: cfg.Scheme, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	k := cfg.K
	max := cap_(p, cfg.KMax)
	if k == 0 {
		if max < 2 {
			k = 1
		} else {
			best, _, err := p.BestKByANS(2, max)
			if err != nil {
				return nil, err
			}
			k = best
		}
	} else if k > max {
		k = max
	}
	res, err := p.PartitionK(k)
	if err != nil {
		return nil, err
	}
	return res.Assign, nil
}

// repartitionRegions re-partitions every region of the previous frame
// independently under the new densities and stitches the results into a
// global labeling — the distributed regime.
func repartitionRegions(g *graph.Graph, f []float64, prev []int, cfg Config) ([]int, error) {
	regions := map[int][]int{}
	for v, l := range prev {
		regions[l] = append(regions[l], v)
	}
	out := make([]int, len(prev))
	next := 0
	for l := 0; l < len(regions); l++ {
		members := regions[l]
		sub, orig, err := g.Induced(members)
		if err != nil {
			return nil, err
		}
		subF := make([]float64, len(members))
		for i, v := range orig {
			subF[i] = f[v]
		}
		local, err := splitRegion(sub, subF, cfg)
		if err != nil {
			return nil, err
		}
		maxLocal := 0
		for i, v := range orig {
			out[v] = next + local[i]
			if local[i] > maxLocal {
				maxLocal = local[i]
			}
		}
		next += maxLocal + 1
	}
	return out, nil
}

// splitRegion partitions one region's subgraph into up to SubKMax parts,
// keeping it whole when the best split's ANS exceeds KeepANS.
func splitRegion(sub *graph.Graph, f []float64, cfg Config) ([]int, error) {
	if sub.N() < 4 {
		return make([]int, sub.N()), nil
	}
	p, err := core.NewPipelineFromGraph(sub, f, core.Config{Scheme: cfg.Scheme, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	max := cap_(p, cfg.SubKMax)
	if max < 2 {
		return make([]int, sub.N()), nil
	}
	best, sweep, err := p.BestKByANS(2, max)
	if err != nil {
		return nil, err
	}
	for _, pt := range sweep {
		if pt.K == best {
			if pt.Result.Report.ANS > cfg.KeepANS {
				return make([]int, sub.N()), nil // no worthwhile split
			}
			return pt.Result.Assign, nil
		}
	}
	return make([]int, sub.N()), nil
}

// RegionSeries tracks one frame's regions across the whole snapshot
// sequence: the mean density of each region of frame `ref` at every
// timestamp. It answers the introduction's analysis question — how does
// congestion inside each identified region evolve over time?
func RegionSeries(frames []Frame, snaps []traffic.Snapshot, ref int) ([][]float64, error) {
	if ref < 0 || ref >= len(frames) {
		return nil, fmt.Errorf("temporal: reference frame %d outside %d frames", ref, len(frames))
	}
	assign := frames[ref].Assign
	k := frames[ref].K
	sizes := make([]int, k)
	for _, p := range assign {
		if p < 0 || p >= k {
			return nil, fmt.Errorf("temporal: frame labels inconsistent with K=%d", k)
		}
		sizes[p]++
	}
	series := make([][]float64, k)
	for r := range series {
		series[r] = make([]float64, len(snaps))
	}
	for t, snap := range snaps {
		if len(snap) != len(assign) {
			return nil, fmt.Errorf("temporal: snapshot %d has %d segments, frame has %d", t, len(snap), len(assign))
		}
		for seg, p := range assign {
			series[p][t] += snap[seg]
		}
		for r := 0; r < k; r++ {
			series[r][t] /= float64(sizes[r])
		}
	}
	return series, nil
}

// cap_ clamps a requested k to what the pipeline supports (supernode
// count for supergraph schemes, node count otherwise).
func cap_(p *core.Pipeline, k int) int {
	if p.SG != nil && len(p.SG.Nodes) < k {
		k = len(p.SG.Nodes)
	}
	if p.G.N() < k {
		k = p.G.N()
	}
	return k
}
