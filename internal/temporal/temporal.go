// Package temporal implements repeated congestion-based re-partitioning
// over time, including the distributed regime the paper proposes in
// Section 6.4: partition the whole network once, then re-partition each
// resulting region independently as congestion evolves — cheap enough for
// real time once regions are M1-sized or smaller.
//
// Two entry shapes exist. Run/RunCtx replay a recorded snapshot sequence
// (the paper's offline protocol). Tracker is the streaming form: it owns
// the long-lived state — dual graph, seed partition, per-region
// subgraphs and their last split, density fingerprints, the previous
// eigenbasis — and advances one snapshot or one sparse density delta at
// a time, recomputing only what the observed drift requires. The two are
// bit-identical: a Tracker fed the same densities produces exactly the
// frames a from-scratch run does, because region reuse is permitted only
// when a region's inputs are byte-identical to the run that produced the
// cached split.
package temporal

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"roadpart/internal/core"
	"roadpart/internal/graph"
	"roadpart/internal/metrics"
	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

// Mode selects the re-partitioning regime.
type Mode int

const (
	// ModeGlobal re-partitions the full network at every timestamp.
	ModeGlobal Mode = iota
	// ModeDistributed partitions the full network once, then
	// re-partitions each region independently on later snapshots
	// (Section 6.4's proposal for real-time use).
	ModeDistributed
)

// Config tunes the tracker.
type Config struct {
	// Scheme is the partitioning scheme for every (re-)partition.
	Scheme core.Scheme
	// K fixes the global partition count; 0 selects it by the ANS
	// minimum over [2, KMax].
	K int
	// KMax bounds automatic k selection. 0 selects 10.
	KMax int
	// SubKMax bounds the per-region split in distributed mode (each
	// region may re-split into up to SubKMax parts, or stay whole when
	// no split scores below KeepANS). 0 selects 4; a bound below 2 is
	// meaningless, so no sentinel exists.
	SubKMax int
	// KeepANS is the ANS threshold above which a region refuses to
	// re-split (its best split has too little contrast). 0 selects 0.8;
	// any negative value means "never re-split" — every region keeps its
	// seed-frame shape, which a literal 0 cannot express because 0
	// selects the default. (ANS is non-negative, so thresholds at or
	// below 0 are all equivalent.)
	KeepANS float64
	// DriftThreshold is the fraction of segments whose densities may
	// change between consecutive tracker steps before the incremental
	// path stops trusting its caches and recomputes everything. 0
	// selects 0.25; any negative value disables incremental reuse
	// entirely — every step recomputes from scratch, the legacy
	// per-snapshot behavior (a literal 0 cannot express this because 0
	// selects the default); values >= 1 never fall back. The threshold
	// trades work, not correctness: reuse is permitted only when a
	// region's inputs are byte-identical to the run that cached them, so
	// every setting produces bit-identical frames.
	DriftThreshold float64
	// WarmStart seeds each global re-partition's eigensolve from the
	// previous frame's converged Ritz block
	// (cut.Spectral.SetWarmStartBlock), so successive frames' block
	// Lanczos solves start inside near-converged territory. This trades
	// bit-reproducibility for convergence speed — warm-started frames
	// are numerically equivalent, not byte-identical, to cold ones
	// (docs/NUMERICS.md § Warm starts) — so it is opt-in and excluded
	// from the bit-identity goldens.
	WarmStart bool
	// Seed drives all randomized stages.
	Seed uint64
}

func (c *Config) defaults() {
	if c.KMax == 0 {
		c.KMax = 10
	}
	if c.SubKMax == 0 {
		c.SubKMax = 4
	}
	if c.KeepANS == 0 {
		c.KeepANS = 0.8
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.25
	}
}

// Compute paths a tracker step can take, reported in Frame.Path and the
// roadpart_incremental_steps_total counter.
const (
	// PathFull recomputed every stage from scratch.
	PathFull = "full"
	// PathDelta recomputed only the regions the density delta touched.
	PathDelta = "delta"
	// PathReused replayed cached state because nothing changed.
	PathReused = "reused"
)

// Frame is the partitioning state at one timestamp.
type Frame struct {
	// Index of the snapshot this frame was computed from.
	Snapshot int
	// Assign is the partition per road segment.
	Assign []int
	// K is the partition count.
	K int
	// Report carries the quality metrics under this frame's densities.
	Report metrics.Report
	// ARIvsPrev measures agreement with the previous frame's partition.
	// The first frame has no predecessor, so the value is NaN there (and
	// omitted from the JSON encoding) — averaging a window of frames
	// must skip it rather than count a fictitious perfect agreement.
	ARIvsPrev float64
	// Path records which compute path produced this frame (PathFull,
	// PathDelta or PathReused) — diagnostic only; it never affects the
	// partition.
	Path string
	// Elapsed is the wall-clock cost of producing this frame.
	Elapsed time.Duration
}

// frameJSON is Frame's wire shape. ARIvsPrev is a pointer so the first
// frame's NaN is omitted instead of poisoning the document (encoding/json
// cannot represent NaN).
type frameJSON struct {
	Snapshot  int            `json:"snapshot"`
	Assign    []int          `json:"assign"`
	K         int            `json:"k"`
	Report    metrics.Report `json:"report"`
	ARIvsPrev *float64       `json:"ari_vs_prev,omitempty"`
	Path      string         `json:"path,omitempty"`
	ElapsedMs float64        `json:"elapsed_ms"`
}

// MarshalJSON encodes the frame with ari_vs_prev omitted when it is NaN
// (the first frame of a run).
func (f Frame) MarshalJSON() ([]byte, error) {
	doc := frameJSON{
		Snapshot:  f.Snapshot,
		Assign:    f.Assign,
		K:         f.K,
		Report:    f.Report,
		Path:      f.Path,
		ElapsedMs: float64(f.Elapsed.Microseconds()) / 1000,
	}
	if !math.IsNaN(f.ARIvsPrev) {
		ari := f.ARIvsPrev
		doc.ARIvsPrev = &ari
	}
	return json.Marshal(doc)
}

// UnmarshalJSON is MarshalJSON's inverse: an absent ari_vs_prev decodes
// back to NaN, so frames round-trip through the wire shape (the SSE
// watch client depends on this).
func (f *Frame) UnmarshalJSON(data []byte) error {
	var doc frameJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	f.Snapshot = doc.Snapshot
	f.Assign = doc.Assign
	f.K = doc.K
	f.Report = doc.Report
	if doc.ARIvsPrev != nil {
		f.ARIvsPrev = *doc.ARIvsPrev
	} else {
		f.ARIvsPrev = math.NaN()
	}
	f.Path = doc.Path
	f.Elapsed = time.Duration(doc.ElapsedMs * float64(time.Millisecond))
	return nil
}

// Run re-partitions net for each of the selected snapshot indices and
// returns one frame per index, in order. It is RunCtx without
// cancellation, kept for callers with no context to thread.
func Run(net *roadnet.Network, snaps []traffic.Snapshot, at []int, mode Mode, cfg Config) ([]Frame, error) {
	return RunCtx(context.Background(), net, snaps, at, mode, cfg)
}

// RunCtx re-partitions net for each of the selected snapshot indices
// under ctx: every pipeline stage of every frame observes the context
// between bounded work items (the PR 3 contract), so a multi-snapshot
// run can be cancelled or deadline-bounded mid-stream. An uncancelled
// call is bit-identical to Run.
func RunCtx(ctx context.Context, net *roadnet.Network, snaps []traffic.Snapshot, at []int, mode Mode, cfg Config) ([]Frame, error) {
	if len(at) == 0 {
		return nil, fmt.Errorf("temporal: no snapshot indices")
	}
	for _, t := range at {
		if t < 0 || t >= len(snaps) {
			return nil, fmt.Errorf("temporal: snapshot index %d outside %d snapshots", t, len(snaps))
		}
	}
	tr, err := NewTracker(net, mode, cfg)
	if err != nil {
		return nil, err
	}
	frames := make([]Frame, 0, len(at))
	for _, t := range at {
		fr, err := tr.StepAt(ctx, snaps[t], t)
		if err != nil {
			return nil, fmt.Errorf("temporal: snapshot %d: %w", t, err)
		}
		frames = append(frames, fr)
	}
	return frames, nil
}

// partitionGlobal partitions the whole graph, selecting k automatically
// when cfg.K is zero. warm, when non-empty, seeds the eigensolve from a
// previous frame's Ritz block; the returned warm block (nil unless
// cfg.WarmStart) carries this frame's basis to the next call.
func partitionGlobal(ctx context.Context, g *graph.Graph, f []float64, cfg Config, warm [][]float64) ([]int, [][]float64, error) {
	p, err := core.NewPipelineFromGraphCtx(ctx, g, f, core.Config{Scheme: cfg.Scheme, Seed: cfg.Seed})
	if err != nil {
		return nil, nil, err
	}
	if len(warm) > 0 {
		p.Spectral().SetWarmStartBlock(warm)
	}
	k := cfg.K
	max := cap_(p, cfg.KMax)
	if k == 0 {
		if max < 2 {
			k = 1
		} else {
			best, _, err := p.BestKByANSCtx(ctx, 2, max)
			if err != nil {
				return nil, nil, err
			}
			k = best
		}
	} else if k > max {
		k = max
	}
	res, err := p.PartitionKCtx(ctx, k)
	if err != nil {
		return nil, nil, err
	}
	var nextWarm [][]float64
	if cfg.WarmStart {
		nextWarm = p.Spectral().WarmBlock()
	}
	return res.Assign, nextWarm, nil
}

// repartitionRegions re-partitions every region of the previous frame
// independently under the new densities and stitches the results into a
// global labeling — the distributed regime, one-shot form. The Tracker's
// cache-aware resplit produces bit-identical output; this function is
// the from-scratch path (DriftThreshold < 0) and the reference the
// goldens compare against. ctx is observed between regions — one
// region's split is the cancellation grain.
func repartitionRegions(ctx context.Context, g *graph.Graph, f []float64, prev []int, cfg Config) ([]int, error) {
	regions := map[int][]int{}
	for v, l := range prev {
		regions[l] = append(regions[l], v)
	}
	out := make([]int, len(prev))
	next := 0
	for l := 0; l < len(regions); l++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("temporal: re-split interrupted at region %d of %d: %w", l, len(regions), err)
		}
		members := regions[l]
		sub, orig, err := g.Induced(members)
		if err != nil {
			return nil, err
		}
		subF := make([]float64, len(members))
		for i, v := range orig {
			subF[i] = f[v]
		}
		local, err := splitRegion(ctx, sub, subF, cfg)
		if err != nil {
			return nil, err
		}
		maxLocal := 0
		for i, v := range orig {
			out[v] = next + local[i]
			if local[i] > maxLocal {
				maxLocal = local[i]
			}
		}
		next += maxLocal + 1
	}
	return out, nil
}

// splitRegion partitions one region's subgraph into up to SubKMax parts,
// keeping it whole when the best split's ANS exceeds KeepANS.
func splitRegion(ctx context.Context, sub *graph.Graph, f []float64, cfg Config) ([]int, error) {
	if sub.N() < 4 {
		return make([]int, sub.N()), nil
	}
	p, err := core.NewPipelineFromGraphCtx(ctx, sub, f, core.Config{Scheme: cfg.Scheme, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	max := cap_(p, cfg.SubKMax)
	if max < 2 {
		return make([]int, sub.N()), nil
	}
	best, sweep, err := p.BestKByANSCtx(ctx, 2, max)
	if err != nil {
		return nil, err
	}
	for _, pt := range sweep {
		if pt.K == best {
			if pt.Result.Report.ANS > cfg.KeepANS {
				return make([]int, sub.N()), nil // no worthwhile split
			}
			return pt.Result.Assign, nil
		}
	}
	return make([]int, sub.N()), nil
}

// RegionSeries tracks one frame's regions across the whole snapshot
// sequence: the mean density of each region of frame `ref` at every
// timestamp. It answers the introduction's analysis question — how does
// congestion inside each identified region evolve over time?
func RegionSeries(frames []Frame, snaps []traffic.Snapshot, ref int) ([][]float64, error) {
	if ref < 0 || ref >= len(frames) {
		return nil, fmt.Errorf("temporal: reference frame %d outside %d frames", ref, len(frames))
	}
	assign := frames[ref].Assign
	k := frames[ref].K
	sizes := make([]int, k)
	for _, p := range assign {
		if p < 0 || p >= k {
			return nil, fmt.Errorf("temporal: frame labels inconsistent with K=%d", k)
		}
		sizes[p]++
	}
	series := make([][]float64, k)
	for r := range series {
		series[r] = make([]float64, len(snaps))
	}
	for t, snap := range snaps {
		if len(snap) != len(assign) {
			return nil, fmt.Errorf("temporal: snapshot %d has %d segments, frame has %d", t, len(snap), len(assign))
		}
		for seg, p := range assign {
			series[p][t] += snap[seg]
		}
		for r := 0; r < k; r++ {
			series[r][t] /= float64(sizes[r])
		}
	}
	return series, nil
}

// MeanARI averages the frame-to-frame agreement of a run, skipping the
// first frame's NaN (it has no predecessor — counting it as perfect
// agreement would bias every average toward stability). It returns NaN
// when no frame carries a defined ARI.
func MeanARI(frames []Frame) float64 {
	sum, n := 0.0, 0
	for _, fr := range frames {
		if math.IsNaN(fr.ARIvsPrev) {
			continue
		}
		sum += fr.ARIvsPrev
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// cap_ clamps a requested k to what the pipeline supports (supernode
// count for supergraph schemes, node count otherwise).
func cap_(p *core.Pipeline, k int) int {
	if p.SG != nil && len(p.SG.Nodes) < k {
		k = len(p.SG.Nodes)
	}
	if p.G.N() < k {
		k = p.G.N()
	}
	return k
}
