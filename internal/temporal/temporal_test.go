package temporal

import (
	"math"
	"testing"

	"roadpart/internal/core"
	"roadpart/internal/gen"
	"roadpart/internal/metrics"
	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

// simCity returns a small congested city plus recorded snapshots.
func simCity(t *testing.T) (*roadnet.Network, []traffic.Snapshot) {
	t.Helper()
	net, err := gen.City(gen.CityConfig{TargetIntersections: 120, TargetSegments: 220, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := traffic.Simulate(net, traffic.SimConfig{
		Vehicles: 700, Steps: 300, RecordEvery: 30, Hotspots: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, snaps
}

func TestRunGlobalMode(t *testing.T) {
	net, snaps := simCity(t)
	frames, err := Run(net, snaps, []int{2, 5, 9}, ModeGlobal, Config{Scheme: core.ASG, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("frames = %d, want 3", len(frames))
	}
	g, err := roadnet.DualGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range frames {
		if len(fr.Assign) != len(net.Segments) {
			t.Fatalf("frame %d covers %d segments", i, len(fr.Assign))
		}
		if err := metrics.ValidatePartition(g, fr.Assign); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if fr.K < 1 {
			t.Fatalf("frame %d has K=%d", i, fr.K)
		}
		if i > 0 && (fr.ARIvsPrev < -0.5 || fr.ARIvsPrev > 1.000001) {
			t.Fatalf("frame %d ARI out of range: %v", i, fr.ARIvsPrev)
		}
	}
	if !math.IsNaN(frames[0].ARIvsPrev) {
		t.Fatalf("first frame has no predecessor: ARI must be NaN, got %v", frames[0].ARIvsPrev)
	}
}

func TestRunDistributedRefinesFirstFrame(t *testing.T) {
	net, snaps := simCity(t)
	frames, err := Run(net, snaps, []int{3, 6, 9}, ModeDistributed, Config{Scheme: core.ASG, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := roadnet.DualGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range frames {
		if err := metrics.ValidatePartition(g, fr.Assign); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	// Distributed refinement only splits regions, so later frames have at
	// least as many partitions as the first.
	for i := 1; i < len(frames); i++ {
		if frames[i].K < frames[0].K {
			t.Fatalf("distributed frame %d has fewer partitions (%d) than the seed frame (%d)",
				i, frames[i].K, frames[0].K)
		}
	}
}

func TestRunDistributedNesting(t *testing.T) {
	// Every later-frame partition must be contained in one seed-frame
	// region (the distributed regime never moves segments across the
	// initial boundaries).
	net, snaps := simCity(t)
	frames, err := Run(net, snaps, []int{3, 9}, ModeDistributed, Config{Scheme: core.ASG, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seed, refined := frames[0].Assign, frames[1].Assign
	owner := map[int]int{}
	for v := range refined {
		if prev, ok := owner[refined[v]]; ok {
			if prev != seed[v] {
				t.Fatalf("refined partition %d spans seed regions %d and %d", refined[v], prev, seed[v])
			}
		} else {
			owner[refined[v]] = seed[v]
		}
	}
}

func TestRunErrors(t *testing.T) {
	net, snaps := simCity(t)
	if _, err := Run(net, snaps, nil, ModeGlobal, Config{}); err == nil {
		t.Fatal("empty index list should error")
	}
	if _, err := Run(net, snaps, []int{99}, ModeGlobal, Config{}); err == nil {
		t.Fatal("out-of-range snapshot index should error")
	}
}

func TestRegionSeries(t *testing.T) {
	net, snaps := simCity(t)
	frames, err := Run(net, snaps, []int{5}, ModeGlobal, Config{Scheme: core.ASG, K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	series, err := RegionSeries(frames, snaps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != frames[0].K {
		t.Fatalf("series count %d != K %d", len(series), frames[0].K)
	}
	for r, s := range series {
		if len(s) != len(snaps) {
			t.Fatalf("region %d has %d points, want %d", r, len(s), len(snaps))
		}
		for _, v := range s {
			if v < 0 {
				t.Fatalf("negative mean density %v", v)
			}
		}
	}
	if _, err := RegionSeries(frames, snaps, 9); err == nil {
		t.Fatal("bad reference frame should error")
	}
}

func TestRunFixedK(t *testing.T) {
	net, snaps := simCity(t)
	frames, err := Run(net, snaps, []int{5}, ModeGlobal, Config{Scheme: core.AG, K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if frames[0].K != 3 {
		t.Fatalf("K = %d, want 3", frames[0].K)
	}
}
