package temporal

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"roadpart/internal/graph"
	"roadpart/internal/metrics"
	"roadpart/internal/obs"
	"roadpart/internal/roadnet"
)

// Incremental-path accounting: one steps counter per compute path, one
// regions counter per outcome, and separate stage timers for delta and
// full work so an operator can see how much compute the drift threshold
// is actually saving.
var (
	incStepsHelp = "Temporal tracker steps by compute path (full = everything recomputed, delta = only drift-affected regions recomputed, reused = cached state replayed unchanged)."
	incFull      = obs.Default().Counter("roadpart_incremental_steps_total", incStepsHelp, "path", PathFull)
	incDelta     = obs.Default().Counter("roadpart_incremental_steps_total", incStepsHelp, "path", PathDelta)
	incReused    = obs.Default().Counter("roadpart_incremental_steps_total", incStepsHelp, "path", PathReused)

	incRegionsHelp = "Distributed-mode regions processed by the temporal tracker, by outcome."
	regRecomputed  = obs.Default().Counter("roadpart_incremental_regions_total", incRegionsHelp, "result", "recomputed")
	regReused      = obs.Default().Counter("roadpart_incremental_regions_total", incRegionsHelp, "result", "reused")

	stageFullStep  = obs.StageTimer("temporal_full_step")
	stageDeltaStep = obs.StageTimer("temporal_delta_step")
)

// trackRegion is the cached state of one seed-frame region: its induced
// subgraph (built once — the topology never changes) and the last local
// split computed for it. The split is reused only while the region's
// densities are byte-identical to the ones that produced it, which is
// what keeps the incremental path bit-identical to a from-scratch run.
type trackRegion struct {
	members  []int // dual-graph nodes, ascending (grouping order)
	sub      *graph.Graph
	orig     []int     // sub node -> global node
	subF     []float64 // scratch: current densities restricted to the region
	local    []int     // cached local labels; nil until first computed
	maxLocal int       // max(local), cached for stitching
	dirty    bool      // densities changed since local was computed
}

// Tracker owns the long-lived state of an incremental re-partitioning
// stream: the dual graph (built once), the current density vector and
// its fingerprint, the seed partition and per-region caches of the
// distributed regime, and — when Config.WarmStart is set — the previous
// frame's eigenbasis. Where Run is slice-in/slice-out and forgets
// everything between snapshots, a Tracker advances one snapshot
// (Step/StepAt) or one sparse delta (ApplyDelta) at a time and recomputes
// only what the observed density drift requires.
//
// Reuse never changes results: a cached region split is replayed only
// when that region's densities are byte-identical to the run that
// computed it, and a whole frame is replayed only when nothing changed
// at all, so a Tracker's frames are bit-identical to a from-scratch
// RunCtx over the same densities (the goldens in tracker_test.go pin
// this). A Tracker is safe for concurrent use; steps serialize on an
// internal mutex (the stream is inherently ordered).
type Tracker struct {
	mode Mode
	cfg  Config

	mu         sync.Mutex
	g          *graph.Graph
	n          int // segment count
	structHash uint64
	densHash   uint64
	f          []float64 // current densities; nil before the first step
	steps      int       // frames produced so far
	prev       *Frame    // last frame produced
	seedAssign []int     // frame 0's partition (distributed regime anchor)
	regions    []*trackRegion
	nodeRegion []int       // dual-graph node -> region index
	warm       [][]float64 // previous frame's Ritz block (WarmStart only)
}

// NewTracker prepares a tracker for net: it builds the dual graph once
// and fingerprints the structure. Densities arrive per step, so the
// network's current densities are not consulted until the first
// Step/ApplyDelta.
func NewTracker(net *roadnet.Network, mode Mode, cfg Config) (*Tracker, error) {
	cfg.defaults()
	g, err := roadnet.DualGraph(net)
	if err != nil {
		return nil, err
	}
	return &Tracker{
		mode:       mode,
		cfg:        cfg,
		g:          g,
		n:          len(net.Segments),
		structHash: net.StructureHash(),
	}, nil
}

// Steps reports how many frames the tracker has produced.
func (t *Tracker) Steps() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.steps
}

// Segments reports the segment count every density vector must match.
func (t *Tracker) Segments() int { return t.n }

// Fingerprints returns the structure hash (fixed at construction) and
// the density hash of the tracker's current vector (0 before the first
// step) — the pair result-cache entries for this network are tagged
// with, so a density update can invalidate exactly the entries it made
// stale.
func (t *Tracker) Fingerprints() (structure, density uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.structHash, t.densHash
}

// Step advances the tracker to a full density vector f, producing the
// next frame. The snapshot index is the step sequence number; use StepAt
// to label frames with an external snapshot index.
func (t *Tracker) Step(ctx context.Context, f []float64) (Frame, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stepLocked(ctx, f, t.steps)
}

// StepAt is Step labeling the frame with the given snapshot index.
func (t *Tracker) StepAt(ctx context.Context, f []float64, snapshot int) (Frame, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stepLocked(ctx, f, snapshot)
}

// ApplyDelta advances the tracker by a sparse density delta, maintaining
// the density fingerprint incrementally (O(updates), not O(segments))
// and recomputing only the regions the delta touches when the drift
// stays under Config.DriftThreshold. The frame's snapshot index is the
// step sequence number. A delta before any full Step is an error — the
// tracker has no base vector to patch.
func (t *Tracker) ApplyDelta(ctx context.Context, delta roadnet.DensityDelta) (Frame, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return Frame{}, fmt.Errorf("temporal: delta before any density snapshot")
	}
	if err := delta.Validate(t.n); err != nil {
		return Frame{}, err
	}
	f := append([]float64(nil), t.f...)
	hash := t.densHash
	for _, u := range delta {
		hash = roadnet.UpdateDensityHash(hash, u.Segment, f[u.Segment], u.Density)
		f[u.Segment] = u.Density
	}
	return t.advanceLocked(ctx, f, hash, t.steps)
}

// stepLocked validates and fingerprints a full vector, then advances.
func (t *Tracker) stepLocked(ctx context.Context, f []float64, snapshot int) (Frame, error) {
	if len(f) != t.n {
		return Frame{}, fmt.Errorf("temporal: %d densities for %d segments", len(f), t.n)
	}
	fc := append([]float64(nil), f...)
	return t.advanceLocked(ctx, fc, roadnet.DensityVectorHash(fc), snapshot)
}

// advanceLocked produces the next frame from the already-copied density
// vector f. It owns the compute-path decision: first frame and
// over-threshold drift run full, unchanged densities replay, anything
// else recomputes only the dirty regions.
func (t *Tracker) advanceLocked(ctx context.Context, f []float64, hash uint64, snapshot int) (Frame, error) {
	t0 := time.Now()
	changed := t.changedSegments(f)
	assign, path, err := t.computeAssign(ctx, f, changed)
	if err != nil {
		return Frame{}, err
	}

	var rep metrics.Report
	if path == PathReused && t.prev != nil {
		// Same densities, same assignment: Evaluate is a pure function of
		// (f, assign, g), so the previous report is bit-identical.
		rep = t.prev.Report
	} else {
		if rep, err = metrics.Evaluate(f, assign, t.g); err != nil {
			return Frame{}, err
		}
	}
	ari := math.NaN()
	if t.prev != nil {
		if ari, err = metrics.ARI(t.prev.Assign, assign); err != nil {
			return Frame{}, err
		}
	}
	fr := Frame{
		Snapshot:  snapshot,
		Assign:    assign,
		K:         rep.K,
		Report:    rep,
		ARIvsPrev: ari,
		Path:      path,
		Elapsed:   time.Since(t0),
	}
	t.f = f
	t.densHash = hash
	t.steps++
	t.prev = &fr
	switch path {
	case PathFull:
		incFull.Inc()
	case PathDelta:
		incDelta.Inc()
	default:
		incReused.Inc()
	}
	return fr, nil
}

// changedSegments returns the indices whose densities differ (bitwise)
// from the tracker's current vector; nil on the first step.
func (t *Tracker) changedSegments(f []float64) []int {
	if t.f == nil {
		return nil
	}
	var changed []int
	for i := range f {
		if math.Float64bits(f[i]) != math.Float64bits(t.f[i]) {
			changed = append(changed, i)
		}
	}
	return changed
}

// computeAssign runs the mode's compute for one step and reports the
// path taken.
func (t *Tracker) computeAssign(ctx context.Context, f []float64, changed []int) ([]int, string, error) {
	incremental := t.cfg.DriftThreshold >= 0
	drifted := float64(len(changed)) / float64(max(t.n, 1))
	overThreshold := drifted > t.cfg.DriftThreshold

	// First frame: always a full global partition; it anchors the
	// distributed regime's seed regions.
	if t.steps == 0 {
		sp := stageFullStep.Start()
		assign, warm, err := partitionGlobal(ctx, t.g, f, t.cfg, t.warmStart())
		sp.End()
		if err != nil {
			return nil, "", err
		}
		t.setWarm(warm)
		t.seedAssign = assign
		t.regions, t.nodeRegion = nil, nil
		return assign, PathFull, nil
	}

	if t.mode == ModeGlobal {
		if incremental && len(changed) == 0 {
			// Nothing moved: a recompute would deterministically reproduce
			// the previous frame.
			return append([]int(nil), t.prev.Assign...), PathReused, nil
		}
		sp := stageFullStep.Start()
		assign, warm, err := partitionGlobal(ctx, t.g, f, t.cfg, t.warmStart())
		sp.End()
		if err != nil {
			return nil, "", err
		}
		t.setWarm(warm)
		return assign, PathFull, nil
	}

	// Distributed regime: re-split the SEED frame's regions (not the
	// previous refinement — otherwise splits compound round over round).
	if !incremental {
		sp := stageFullStep.Start()
		assign, err := repartitionRegions(ctx, t.g, f, t.seedAssign, t.cfg)
		sp.End()
		if err != nil {
			return nil, "", err
		}
		return assign, PathFull, nil
	}
	if err := t.ensureRegions(); err != nil {
		return nil, "", err
	}
	if overThreshold {
		// Drift beyond the threshold: stop trusting per-region deltas and
		// recompute every region (the caches refresh as a side effect).
		for _, r := range t.regions {
			r.dirty = true
		}
	} else {
		for _, v := range changed {
			t.regions[t.nodeRegion[v]].dirty = true
		}
	}
	dirty := 0
	for _, r := range t.regions {
		if r.dirty || r.local == nil {
			dirty++
		}
	}
	path := PathDelta
	timer := stageDeltaStep
	switch dirty {
	case 0:
		path = PathReused
	case len(t.regions):
		// Every region recomputes — the first re-split after the seed
		// frame, or over-threshold drift. Either way this is full work.
		path = PathFull
		timer = stageFullStep
	}
	sp := timer.Start()
	assign, err := t.resplit(ctx, f)
	sp.End()
	if err != nil {
		return nil, "", err
	}
	return assign, path, nil
}

// ensureRegions builds the per-region caches from the seed assignment:
// member lists in the exact grouping order repartitionRegions uses, plus
// each region's induced subgraph (computed once — structure is
// immutable).
func (t *Tracker) ensureRegions() error {
	if t.regions != nil {
		return nil
	}
	byLabel := map[int][]int{}
	for v, l := range t.seedAssign {
		byLabel[l] = append(byLabel[l], v)
	}
	t.regions = make([]*trackRegion, len(byLabel))
	t.nodeRegion = make([]int, len(t.seedAssign))
	for l := 0; l < len(byLabel); l++ {
		members, ok := byLabel[l]
		if !ok {
			return fmt.Errorf("temporal: seed assignment labels not dense at %d", l)
		}
		sub, orig, err := t.g.Induced(members)
		if err != nil {
			return err
		}
		t.regions[l] = &trackRegion{
			members: members,
			sub:     sub,
			orig:    orig,
			subF:    make([]float64, len(members)),
			dirty:   true, // no split cached yet
		}
		for _, v := range members {
			t.nodeRegion[v] = l
		}
	}
	return nil
}

// resplit produces the distributed frame: dirty regions recompute their
// local split from the current densities, clean regions replay the
// cached one, and the locals stitch into a global labeling exactly as
// repartitionRegions does. ctx is observed between regions.
func (t *Tracker) resplit(ctx context.Context, f []float64) ([]int, error) {
	out := make([]int, t.n)
	next := 0
	for l, r := range t.regions {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("temporal: re-split interrupted at region %d of %d: %w", l, len(t.regions), err)
		}
		if r.dirty || r.local == nil {
			for i, v := range r.orig {
				r.subF[i] = f[v]
			}
			local, err := splitRegion(ctx, r.sub, r.subF, t.cfg)
			if err != nil {
				return nil, err
			}
			r.local = local
			r.maxLocal = 0
			for _, lab := range local {
				if lab > r.maxLocal {
					r.maxLocal = lab
				}
			}
			r.dirty = false
			regRecomputed.Inc()
		} else {
			regReused.Inc()
		}
		for i, v := range r.orig {
			out[v] = next + r.local[i]
		}
		next += r.maxLocal + 1
	}
	return out, nil
}

// warmStart returns the eigenbasis seed block for the next global
// partition, nil unless WarmStart is enabled and a previous basis exists.
func (t *Tracker) warmStart() [][]float64 {
	if !t.cfg.WarmStart {
		return nil
	}
	return t.warm
}

func (t *Tracker) setWarm(v [][]float64) {
	if t.cfg.WarmStart && len(v) > 0 {
		t.warm = v
	}
}
