package temporal

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"roadpart/internal/core"
	"roadpart/internal/experiments"
	"roadpart/internal/roadnet"
	"roadpart/internal/traffic"
)

// hashFrames fingerprints the deterministic content of a frame sequence —
// snapshot index, assignment, K and the quality report — with FNV-64a.
// Path and Elapsed are excluded: the compute route and wall clock are
// diagnostics, not results.
func hashFrames(frames []Frame) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	for _, fr := range frames {
		put(uint64(fr.Snapshot))
		put(uint64(fr.K))
		put(uint64(len(fr.Assign)))
		for _, a := range fr.Assign {
			put(uint64(a))
		}
		put(uint64(fr.Report.K))
		put(math.Float64bits(fr.Report.Inter))
		put(math.Float64bits(fr.Report.Intra))
		put(math.Float64bits(fr.Report.GDBI))
		put(math.Float64bits(fr.Report.ANS))
		if math.IsNaN(fr.ARIvsPrev) {
			put(^uint64(0))
		} else {
			put(math.Float64bits(fr.ARIvsPrev))
		}
	}
	return h.Sum64()
}

// withDelta returns a copy of f with the delta applied.
func withDelta(f []float64, d roadnet.DensityDelta) []float64 {
	out := append([]float64(nil), f...)
	for _, u := range d {
		out[u.Segment] = u.Density
	}
	return out
}

// trackerGoldens pins the tentpole guarantee: a tracker advancing through
// snapshots and sparse deltas produces bit-identical frames to a
// from-scratch run (DriftThreshold < 0 disables every cache) over the
// same density sequence, for D1 and M1 under AG and ASG and across drift
// thresholds. The literal hashes also pin today's output against silent
// drift in any upstream stage.
// Re-pinned exactly once with the switch to the matrix-free block
// Lanczos solver (docs/NUMERICS.md § Golden re-pinning policy).
var trackerGoldens = map[string]uint64{
	"D1/AG":  0x2c456561038494e5,
	"D1/ASG": 0xce617f1b7b6d734e,
	"M1/AG":  0xdd28f87a08327102,
	"M1/ASG": 0xf2851144ff0439fd,
}

func TestTrackerBitIdenticalToFromScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-pipeline golden comparison")
	}
	for _, tc := range []struct {
		dataset string
		scheme  core.Scheme
		name    string
	}{
		{"D1", core.AG, "D1/AG"},
		{"D1", core.ASG, "D1/ASG"},
		{"M1", core.AG, "M1/AG"},
		{"M1", core.ASG, "M1/ASG"},
	} {
		t.Run(strings.ReplaceAll(tc.name, "/", "_"), func(t *testing.T) {
			ds, err := experiments.BuildDataset(tc.dataset, experiments.ScaleSmall)
			if err != nil {
				t.Fatal(err)
			}
			snaps, err := traffic.Simulate(ds.Net, traffic.SimConfig{
				Vehicles: 400, Steps: 120, RecordEvery: 40, Hotspots: 3, Seed: 17,
			})
			if err != nil {
				t.Fatal(err)
			}
			n := len(ds.Net.Segments)
			// A small delta (3 segments — the incremental sweet spot), then a
			// whole fresh snapshot (typically past the drift threshold), then
			// another small delta.
			d1 := roadnet.DensityDelta{
				{Segment: 0, Density: 0.42},
				{Segment: n / 2, Density: 0.07},
				{Segment: n - 1, Density: 0.33},
			}
			d2 := roadnet.DensityDelta{{Segment: n / 3, Density: 0.91}}
			seq := [][]float64{
				snaps[0],
				withDelta(snaps[0], d1),
				snaps[1],
				withDelta(snaps[1], d2),
			}
			cfg := Config{Scheme: tc.scheme, K: 5, Seed: 7}
			ctx := context.Background()

			// From-scratch reference: caches disabled entirely.
			refCfg := cfg
			refCfg.DriftThreshold = -1
			ref, err := NewTracker(ds.Net, ModeDistributed, refCfg)
			if err != nil {
				t.Fatal(err)
			}
			var refFrames []Frame
			for _, f := range seq {
				fr, err := ref.Step(ctx, f)
				if err != nil {
					t.Fatal(err)
				}
				if fr.Path != PathFull {
					t.Fatalf("from-scratch tracker took path %q", fr.Path)
				}
				refFrames = append(refFrames, fr)
			}
			refHash := hashFrames(refFrames)

			// Incremental trackers at several thresholds, fed the same
			// densities as snapshots + sparse deltas.
			for _, threshold := range []float64{0.25, 0.02, 1.5} {
				incCfg := cfg
				incCfg.DriftThreshold = threshold
				tr, err := NewTracker(ds.Net, ModeDistributed, incCfg)
				if err != nil {
					t.Fatal(err)
				}
				var frames []Frame
				step := func(fr Frame, err error) {
					t.Helper()
					if err != nil {
						t.Fatal(err)
					}
					frames = append(frames, fr)
				}
				step(tr.Step(ctx, seq[0]))
				step(tr.ApplyDelta(ctx, d1))
				step(tr.StepAt(ctx, seq[2], 2))
				step(tr.ApplyDelta(ctx, d2))
				// StepAt labeled frame 2 explicitly; ApplyDelta frames carry
				// the sequence number, which matches here by construction.
				if got := hashFrames(frames); got != refHash {
					t.Fatalf("threshold %v: incremental frames %016x != from-scratch %016x",
						threshold, got, refHash)
				}
				if threshold >= 1 {
					// Frame 1 is the first re-split, so every region cache is
					// cold and it honestly reports a full recompute; frame 3
					// must have taken the incremental path for the comparison
					// to mean anything.
					if frames[3].Path != PathDelta {
						t.Fatalf("threshold %v: delta step took path %q, want %q",
							threshold, frames[3].Path, PathDelta)
					}
				}
			}

			want, ok := trackerGoldens[tc.name]
			if !ok {
				t.Fatalf("no golden for %s", tc.name)
			}
			if refHash != want {
				t.Fatalf("golden %s = %#016x, want %#016x", tc.name, refHash, want)
			}
		})
	}
}

// TestRunMatchesRunCtx pins the legacy-delegation contract: Run must be
// bit-identical to RunCtx with a background context.
func TestRunMatchesRunCtx(t *testing.T) {
	net, snaps := simCity(t)
	cfg := Config{Scheme: core.ASG, Seed: 4}
	legacy, err := Run(net, snaps, []int{2, 6}, ModeDistributed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := RunCtx(context.Background(), net, snaps, []int{2, 6}, ModeDistributed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hashFrames(legacy) != hashFrames(ctxed) {
		t.Fatal("Run and RunCtx diverge")
	}
}

// TestRunCtxCancelMidStream: a cancellation between frames must stop the
// run with a context-wrapped error and leak no goroutines.
func TestRunCtxCancelMidStream(t *testing.T) {
	net, snaps := simCity(t)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	tr, err := NewTracker(net, ModeDistributed, Config{Scheme: core.ASG, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(ctx, snaps[0]); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := tr.Step(ctx, snaps[1]); err == nil {
		t.Fatal("step with cancelled context succeeded")
	} else if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("error %v does not wrap cancellation", err)
	}
	// The tracker must remain usable under a live context.
	if _, err := tr.Step(context.Background(), snaps[1]); err != nil {
		t.Fatalf("tracker poisoned by cancelled step: %v", err)
	}
	// Goroutine-leak check with settling time for worker teardown.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+2 || time.Now().After(deadline) {
			if g > before+2 {
				t.Fatalf("goroutines grew from %d to %d after cancellation", before, g)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRunCtxPreCancelled: an already-dead context must fail before any
// pipeline work.
func TestRunCtxPreCancelled(t *testing.T) {
	net, snaps := simCity(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, net, snaps, []int{0, 1}, ModeGlobal, Config{Scheme: core.AG, K: 3, Seed: 1}); err == nil {
		t.Fatal("pre-cancelled RunCtx succeeded")
	}
}

func TestTrackerReusedPath(t *testing.T) {
	net, snaps := simCity(t)
	tr, err := NewTracker(net, ModeDistributed, Config{Scheme: core.ASG, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := tr.Step(ctx, snaps[0]); err != nil {
		t.Fatal(err)
	}
	first, err := tr.Step(ctx, snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	replay, err := tr.Step(ctx, snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	if replay.Path != PathReused {
		t.Fatalf("unchanged densities took path %q, want %q", replay.Path, PathReused)
	}
	for i := range first.Assign {
		if replay.Assign[i] != first.Assign[i] {
			t.Fatal("replayed frame differs from its original")
		}
	}
	if replay.ARIvsPrev != 1 {
		t.Fatalf("replayed frame ARI = %v, want 1", replay.ARIvsPrev)
	}
	if replay.Report != first.Report {
		t.Fatal("replayed frame report differs")
	}
}

func TestTrackerDeltaValidation(t *testing.T) {
	net, snaps := simCity(t)
	tr, err := NewTracker(net, ModeDistributed, Config{Scheme: core.ASG, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := tr.ApplyDelta(ctx, roadnet.DensityDelta{{Segment: 0, Density: 1}}); err == nil {
		t.Fatal("delta before any snapshot accepted")
	}
	if _, err := tr.Step(ctx, snaps[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ApplyDelta(ctx, roadnet.DensityDelta{{Segment: len(net.Segments), Density: 1}}); err == nil {
		t.Fatal("out-of-range delta accepted")
	}
	if _, err := tr.Step(ctx, make([]float64, 3)); err == nil {
		t.Fatal("wrong-length density vector accepted")
	}
	// Fingerprints stay incrementally exact across a valid delta.
	if _, err := tr.ApplyDelta(ctx, roadnet.DensityDelta{{Segment: 1, Density: 0.77}}); err != nil {
		t.Fatal(err)
	}
	_, dens := tr.Fingerprints()
	want := roadnet.DensityVectorHash(withDelta(snaps[0], roadnet.DensityDelta{{Segment: 1, Density: 0.77}}))
	if dens != want {
		t.Fatalf("incremental density fingerprint %016x != full rehash %016x", dens, want)
	}
}

func TestFrameJSONOmitsNaNARI(t *testing.T) {
	first := Frame{Snapshot: 0, Assign: []int{0, 1}, K: 2, ARIvsPrev: math.NaN(), Path: PathFull}
	doc, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(doc), "ari_vs_prev") {
		t.Fatalf("NaN ARI serialized: %s", doc)
	}
	later := first
	later.ARIvsPrev = 0.5
	doc, err = json.Marshal(later)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(doc), `"ari_vs_prev":0.5`) {
		t.Fatalf("defined ARI missing: %s", doc)
	}
}

func TestMeanARISkipsFirstFrame(t *testing.T) {
	frames := []Frame{
		{ARIvsPrev: math.NaN()},
		{ARIvsPrev: 0.8},
		{ARIvsPrev: 0.6},
	}
	if got := MeanARI(frames); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("MeanARI = %v, want 0.7 (NaN first frame skipped)", got)
	}
	if !math.IsNaN(MeanARI(frames[:1])) {
		t.Fatal("MeanARI of only-NaN frames should be NaN")
	}
}
