package traffic

import "fmt"

// TimeAverage returns the element-wise mean of the last window snapshots
// (all of them when window <= 0 or exceeds the count). Instantaneous
// vehicle counts on short segments are shot-noise dominated; averaging over
// a time window recovers the underlying spatial congestion structure, the
// same way a real detector reports occupancy over an interval rather than
// an instant.
func TimeAverage(snaps []Snapshot, window int) (Snapshot, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("traffic: no snapshots to average")
	}
	if window <= 0 || window > len(snaps) {
		window = len(snaps)
	}
	use := snaps[len(snaps)-window:]
	n := len(use[0])
	out := make(Snapshot, n)
	for _, s := range use {
		if len(s) != n {
			return nil, fmt.Errorf("traffic: snapshot lengths differ (%d vs %d)", len(s), n)
		}
		for i, v := range s {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(window)
	}
	return out, nil
}
