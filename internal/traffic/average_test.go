package traffic

import "testing"

func TestTimeAverageBasic(t *testing.T) {
	snaps := []Snapshot{{1, 2}, {3, 4}, {5, 6}}
	avg, err := TimeAverage(snaps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if avg[0] != 3 || avg[1] != 4 {
		t.Fatalf("avg = %v, want [3 4]", avg)
	}
}

func TestTimeAverageWindow(t *testing.T) {
	snaps := []Snapshot{{10, 10}, {1, 2}, {3, 4}}
	avg, err := TimeAverage(snaps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if avg[0] != 2 || avg[1] != 3 {
		t.Fatalf("windowed avg = %v, want [2 3]", avg)
	}
	// Oversized window falls back to everything.
	avg, err = TimeAverage(snaps, 99)
	if err != nil {
		t.Fatal(err)
	}
	if avg[0] != 14.0/3 {
		t.Fatalf("oversized window avg = %v", avg)
	}
}

func TestTimeAverageErrors(t *testing.T) {
	if _, err := TimeAverage(nil, 1); err == nil {
		t.Fatal("empty snapshot list should error")
	}
	if _, err := TimeAverage([]Snapshot{{1}, {1, 2}}, 0); err == nil {
		t.Fatal("ragged snapshots should error")
	}
}
