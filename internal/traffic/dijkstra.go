// Package traffic populates road networks with congestion — the data
// substrate of the paper's Section 6.1.
//
// The paper's large datasets carry densities produced by MNTG, a web-based
// random-traffic generator whose trajectories the authors mapped onto road
// segments; its small dataset comes from a 4-hour microsimulation. Neither
// tool is available offline, so this package provides the equivalent
// substrate:
//
//   - Simulate: a time-stepped microsimulation of vehicles doing
//     attractor-biased random walks (MNTG's random movement, plus the
//     hotspot structure real cities exhibit), with congestion-dependent
//     speeds, producing per-segment densities (vehicles/metre) at every
//     recorded timestamp.
//   - SyntheticField: a fast closed-form density field (Gaussian hotspots
//     over the city plane plus noise) for the largest parameter sweeps.
//   - ShortestPath: Dijkstra routing over directed segments, used by the
//     origin–destination trip mode of the simulator and exported for
//     example applications.
package traffic

import (
	"container/heap"
	"fmt"

	"roadpart/internal/roadnet"
)

// ShortestPath returns the segment IDs of a shortest (by length) directed
// route from intersection `from` to intersection `to`, or an error if no
// route exists. Dijkstra with a binary heap, O((V+E) log V).
func ShortestPath(net *roadnet.Network, from, to int) ([]int, error) {
	ni := len(net.Intersections)
	if from < 0 || from >= ni || to < 0 || to >= ni {
		return nil, fmt.Errorf("traffic: route endpoints (%d,%d) outside %d intersections", from, to, ni)
	}
	if from == to {
		return nil, nil
	}
	out := net.OutSegments()

	const unreached = -1
	dist := make([]float64, ni)
	via := make([]int, ni) // segment used to reach each intersection
	done := make([]bool, ni)
	for i := range dist {
		dist[i] = -1
		via[i] = unreached
	}
	dist[from] = 0

	pq := &distHeap{items: []distItem{{node: from, d: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == to {
			break
		}
		for _, segID := range out[it.node] {
			s := net.Segments[segID]
			nd := it.d + s.Length
			if dist[s.To] < 0 || nd < dist[s.To] {
				dist[s.To] = nd
				via[s.To] = segID
				heap.Push(pq, distItem{node: s.To, d: nd})
			}
		}
	}
	if via[to] == unreached {
		return nil, fmt.Errorf("traffic: no route from %d to %d", from, to)
	}
	// Reconstruct backwards.
	var rev []int
	for at := to; at != from; {
		seg := via[at]
		rev = append(rev, seg)
		at = net.Segments[seg].From
	}
	route := make([]int, len(rev))
	for i := range rev {
		route[i] = rev[len(rev)-1-i]
	}
	return route, nil
}

type distItem struct {
	node int
	d    float64
}

type distHeap struct{ items []distItem }

func (h *distHeap) Len() int           { return len(h.items) }
func (h *distHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x interface{}) { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
