package traffic

import (
	"fmt"
	"math"

	"roadpart/internal/gen"
	"roadpart/internal/roadnet"
)

// FieldConfig tunes the closed-form density synthesizer. Because the
// zero value of every field selects a default, the meaningful zeros
// ("no hotspots", "no background", "no noise") are spelled as negative
// values, mirroring SimConfig.WanderFrac's convention.
type FieldConfig struct {
	// Hotspots is the number of congestion centers. 0 selects 5; any
	// negative value means no hotspots at all (the field is Base plus
	// noise everywhere).
	Hotspots int
	// Peak is the density at a hotspot core in vehicles/metre.
	// 0 selects 0.12 (near jam); negative means 0 (hotspots contribute
	// nothing).
	Peak float64
	// Base is the uncongested background density. 0 selects 0.005;
	// negative means 0 (no background — density comes from hotspots
	// alone).
	Base float64
	// SigmaFrac sets hotspot radius as a fraction of the city diagonal.
	// 0 selects 0.12; the radius must be positive for the Gaussians to
	// be defined, so no sentinel exists.
	SigmaFrac float64
	// Noise is the multiplicative jitter amplitude in [0,1). Road-level
	// variation ensures no two segments are exactly alike. 0 selects
	// 0.15; negative means 0 (a deterministic, smooth field).
	Noise float64
	// Seed drives hotspot placement and noise.
	Seed uint64
}

func (c *FieldConfig) defaults() {
	switch {
	case c.Hotspots == 0:
		c.Hotspots = 5
	case c.Hotspots < 0:
		c.Hotspots = 0
	}
	switch {
	case c.Peak == 0:
		c.Peak = 0.12
	case c.Peak < 0:
		c.Peak = 0
	}
	switch {
	case c.Base == 0:
		c.Base = 0.005
	case c.Base < 0:
		c.Base = 0
	}
	if c.SigmaFrac == 0 {
		c.SigmaFrac = 0.12
	}
	switch {
	case c.Noise == 0:
		c.Noise = 0.15
	case c.Noise < 0:
		c.Noise = 0
	}
}

// SyntheticField produces a per-segment density snapshot from a sum of
// Gaussian congestion hotspots over the city plane plus segment-level
// noise. It is the fast substitute for a full microsimulation when a sweep
// needs hundreds of snapshots on the largest networks: O(segments ×
// hotspots), deterministic in Seed, and statistically similar in the one
// property the partitioners depend on — spatially correlated density with
// distinct congested regions.
func SyntheticField(net *roadnet.Network, cfg FieldConfig) (Snapshot, error) {
	if len(net.Segments) == 0 {
		return nil, fmt.Errorf("traffic: network has no segments")
	}
	cfg.defaults()
	rng := gen.NewRNG(cfg.Seed)

	// City bounding box for hotspot placement and radius.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range net.Intersections {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	diag := math.Hypot(maxX-minX, maxY-minY)
	sigma := cfg.SigmaFrac * diag
	if sigma <= 0 {
		sigma = 1
	}

	type spot struct{ x, y, amp float64 }
	spots := make([]spot, cfg.Hotspots)
	for i := range spots {
		spots[i] = spot{
			x: minX + rng.Float64()*(maxX-minX),
			y: minY + rng.Float64()*(maxY-minY),
			// Amplitudes decay so one dominant core emerges, like a CBD.
			amp: cfg.Peak / float64(i+1),
		}
	}

	snap := make(Snapshot, len(net.Segments))
	inv2s2 := 1 / (2 * sigma * sigma)
	for i := range net.Segments {
		x, y := net.SegmentMidpoint(i)
		d := cfg.Base
		for _, s := range spots {
			dx, dy := x-s.x, y-s.y
			d += s.amp * math.Exp(-(dx*dx+dy*dy)*inv2s2)
		}
		d *= 1 + cfg.Noise*(2*rng.Float64()-1)
		if d < 0 {
			d = 0
		}
		snap[i] = d
	}
	return snap, nil
}
