package traffic

import "testing"

// The zero value of every FieldConfig field selects a default, so the
// meaningful zeros are spelled as negatives. These tests pin that
// convention.

func TestFieldNegativeHotspotsIsFlat(t *testing.T) {
	net := testCity(t)
	snap, err := SyntheticField(net, FieldConfig{Hotspots: -1, Noise: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range snap {
		if d != 0.005 { // default Base, no hotspots, no noise
			t.Fatalf("segment %d: density %v, want flat default base 0.005", i, d)
		}
	}
}

func TestFieldNegativePeakLeavesOnlyBase(t *testing.T) {
	net := testCity(t)
	snap, err := SyntheticField(net, FieldConfig{Peak: -1, Noise: -1, Base: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range snap {
		if d != 0.01 {
			t.Fatalf("segment %d: density %v, want base 0.01 with zero-amplitude hotspots", i, d)
		}
	}
}

func TestFieldAllNegativeSentinelsYieldZeroField(t *testing.T) {
	net := testCity(t)
	snap, err := SyntheticField(net, FieldConfig{Hotspots: -1, Peak: -1, Base: -1, Noise: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range snap {
		if d != 0 {
			t.Fatalf("segment %d: density %v, want 0 everywhere", i, d)
		}
	}
}

func TestFieldNegativeNoiseIsDeterministicSmooth(t *testing.T) {
	net := testCity(t)
	a, err := SyntheticField(net, FieldConfig{Noise: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticField(net, FieldConfig{Noise: -1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// With noise disabled the only seed-dependence left is hotspot
	// placement; the field must still be well-formed and non-flat.
	flat := true
	for i := range a {
		if a[i] != a[0] {
			flat = false
			break
		}
	}
	if flat {
		t.Fatal("hotspot field should not be flat")
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should still move hotspots")
	}
}
