package traffic

import (
	"fmt"

	"roadpart/internal/gen"
	"roadpart/internal/roadnet"
)

// ODConfig tunes the origin–destination trip simulation. Zero fields
// select defaults.
type ODConfig struct {
	// Vehicles is the fleet size. 0 selects one vehicle per 2 segments.
	Vehicles int
	// Steps is the number of simulation ticks. 0 selects 600.
	Steps int
	// RecordEvery records a snapshot every that many ticks. 0 selects
	// Steps/100 (≥1).
	RecordEvery int
	// Dt is the tick length in seconds. 0 selects 2.
	Dt float64
	// VMax is the free-flow speed in m/s. 0 selects 14.
	VMax float64
	// VMin is the crawl speed in m/s. 0 selects 1.
	VMin float64
	// RhoJam is the jam density in vehicles/metre. 0 selects 0.15.
	RhoJam float64
	// Hotspots is the number of popular destination intersections;
	// trips end at a hotspot with HotspotBias probability. 0 selects 4;
	// to remove hotspot pull set HotspotBias negative rather than
	// zeroing this.
	Hotspots int
	// HotspotBias is the probability a trip targets a hotspot rather
	// than a uniform destination. 0 selects 0.6; negative disables.
	HotspotBias float64
	// Seed drives trip generation.
	Seed uint64
}

func (c *ODConfig) defaults(nSeg int) {
	if c.Vehicles == 0 {
		c.Vehicles = nSeg / 2
		if c.Vehicles < 10 {
			c.Vehicles = 10
		}
	}
	if c.Steps == 0 {
		c.Steps = 600
	}
	if c.RecordEvery == 0 {
		c.RecordEvery = c.Steps / 100
		if c.RecordEvery < 1 {
			c.RecordEvery = 1
		}
	}
	if c.Dt == 0 {
		c.Dt = 2
	}
	if c.VMax == 0 {
		c.VMax = 14
	}
	if c.VMin == 0 {
		c.VMin = 1
	}
	if c.RhoJam == 0 {
		c.RhoJam = 0.15
	}
	if c.Hotspots == 0 {
		c.Hotspots = 4
	}
	if c.HotspotBias == 0 {
		c.HotspotBias = 0.6
	} else if c.HotspotBias < 0 {
		c.HotspotBias = 0
	}
}

// odVehicle follows a precomputed shortest-path route segment by segment.
type odVehicle struct {
	route []int
	leg   int // index into route
	pos   float64
}

// SimulateOD runs a trip-based microsimulation: every vehicle draws an
// origin–destination pair (destinations biased toward hotspot
// intersections), follows the shortest directed route, and draws a new
// trip on arrival. Compared to Simulate's biased random walks, OD trips
// concentrate flow on arterials the way commuter traffic does, at the
// price of a Dijkstra per trip — use it on networks up to a few thousand
// intersections.
func SimulateOD(net *roadnet.Network, cfg ODConfig) ([]Snapshot, error) {
	nSeg := len(net.Segments)
	if nSeg == 0 {
		return nil, fmt.Errorf("traffic: network has no segments")
	}
	cfg.defaults(nSeg)
	rng := gen.NewRNG(cfg.Seed)
	ni := len(net.Intersections)

	hotspots := make([]int, cfg.Hotspots)
	for i := range hotspots {
		hotspots[i] = rng.Intn(ni)
	}
	pickDest := func(origin int) int {
		for attempt := 0; attempt < 20; attempt++ {
			d := rng.Intn(ni)
			if rng.Bool(cfg.HotspotBias) {
				d = hotspots[rng.Intn(len(hotspots))]
			}
			if d != origin {
				return d
			}
		}
		return (origin + 1) % ni
	}
	newTrip := func(origin int) []int {
		// Retry a few times: one-way grids leave some pairs unreachable.
		for attempt := 0; attempt < 8; attempt++ {
			route, err := ShortestPath(net, origin, pickDest(origin))
			if err == nil && len(route) > 0 {
				return route
			}
			origin = rng.Intn(ni)
		}
		return nil
	}

	count := make([]int, nSeg)
	fleet := make([]odVehicle, 0, cfg.Vehicles)
	for len(fleet) < cfg.Vehicles {
		route := newTrip(rng.Intn(ni))
		if route == nil {
			return nil, fmt.Errorf("traffic: network has no routable trips")
		}
		v := odVehicle{route: route, pos: rng.Float64() * net.Segments[route[0]].Length}
		fleet = append(fleet, v)
		count[route[0]]++
	}

	var snaps []Snapshot
	record := func() {
		snap := make(Snapshot, nSeg)
		for i, c := range count {
			snap[i] = float64(c) / net.Segments[i].Length
		}
		snaps = append(snaps, snap)
	}

	for step := 1; step <= cfg.Steps; step++ {
		for vi := range fleet {
			v := &fleet[vi]
			seg := v.route[v.leg]
			s := &net.Segments[seg]
			rho := float64(count[seg]) / s.Length
			speed := cfg.VMax * (1 - rho/cfg.RhoJam)
			if speed < cfg.VMin {
				speed = cfg.VMin
			}
			v.pos += speed * cfg.Dt
			if v.pos < s.Length {
				continue
			}
			count[seg]--
			v.leg++
			v.pos = 0
			if v.leg >= len(v.route) {
				// Arrived: next trip starts where this one ended.
				origin := net.Segments[seg].To
				route := newTrip(origin)
				if route == nil {
					route = v.route // re-drive the old trip as a fallback
				}
				v.route = route
				v.leg = 0
			}
			count[v.route[v.leg]]++
		}
		if step%cfg.RecordEvery == 0 {
			record()
		}
	}
	if len(snaps) == 0 {
		record()
	}
	return snaps, nil
}
