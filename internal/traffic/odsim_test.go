package traffic

import (
	"math"
	"testing"

	"roadpart/internal/gen"
	"roadpart/internal/roadnet"
)

func TestSimulateODConservesVehicles(t *testing.T) {
	net := testCity(t)
	snaps, err := SimulateOD(net, ODConfig{Vehicles: 200, Steps: 120, RecordEvery: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 6 {
		t.Fatalf("snapshots = %d, want 6", len(snaps))
	}
	for si, snap := range snaps {
		var total float64
		for i, d := range snap {
			if d < 0 || math.IsNaN(d) {
				t.Fatalf("snapshot %d has invalid density %v", si, d)
			}
			total += d * net.Segments[i].Length
		}
		if math.Abs(total-200) > 1e-6 {
			t.Fatalf("snapshot %d vehicle mass = %v, want 200", si, total)
		}
	}
}

func TestSimulateODDeterministic(t *testing.T) {
	net := testCity(t)
	a, err := SimulateOD(net, ODConfig{Vehicles: 80, Steps: 60, RecordEvery: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateOD(net, ODConfig{Vehicles: 80, Steps: 60, RecordEvery: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a[0] {
		if a[0][i] != b[0][i] {
			t.Fatal("OD simulation should be deterministic in seed")
		}
	}
}

func TestSimulateODConcentratesFlow(t *testing.T) {
	// Hotspot-biased trips should produce an uneven density field.
	net, err := gen.City(gen.CityConfig{TargetIntersections: 200, TargetSegments: 420, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := SimulateOD(net, ODConfig{Vehicles: 600, Steps: 250, RecordEvery: 250, Hotspots: 2, HotspotBias: 0.8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := snaps[len(snaps)-1]
	var mean float64
	for _, v := range d {
		mean += v
	}
	mean /= float64(len(d))
	var variance float64
	for _, v := range d {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(d))
	if cv := math.Sqrt(variance) / mean; cv < 0.5 {
		t.Fatalf("OD traffic too flat: cv = %v", cv)
	}
}

func TestSimulateODErrors(t *testing.T) {
	if _, err := SimulateOD(&roadnet.Network{}, ODConfig{}); err == nil {
		t.Fatal("empty network should error")
	}
}
