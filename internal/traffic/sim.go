package traffic

import (
	"fmt"
	"math"

	"roadpart/internal/gen"
	"roadpart/internal/roadnet"
)

// Snapshot is a per-segment density vector (vehicles/metre) at one
// timestamp.
type Snapshot []float64

// SimConfig tunes the microsimulation. Zero fields select defaults.
type SimConfig struct {
	// Vehicles is the fleet size. 0 selects one vehicle per 2 segments.
	Vehicles int
	// Steps is the number of simulation ticks. 0 selects 600.
	Steps int
	// RecordEvery records a density snapshot every that many ticks.
	// 0 selects Steps/100 (≥1), giving ~100 snapshots like MNTG's
	// 100 timestamps.
	RecordEvery int
	// Dt is the tick length in seconds. 0 selects 2.
	Dt float64
	// VMax is the free-flow speed in m/s. 0 selects 14 (~50 km/h).
	VMax float64
	// VMin is the crawl speed in m/s under full jam. 0 selects 1; a
	// literal zero is intentionally unreachable — it would freeze jammed
	// vehicles forever and the simulation would never drain.
	VMin float64
	// RhoJam is the jam density in vehicles/metre. 0 selects 0.15
	// (~one vehicle per 6.7 m of road); a literal zero is intentionally
	// unreachable — the speed-density relation divides by it.
	RhoJam float64
	// Hotspots is the number of attractor points pulling traffic.
	// 0 selects 4. Hotspot gravity is what creates the spatially
	// heterogeneous congestion the partitioners must discover; to ignore
	// hotspots entirely set WanderFrac = 1 (the whole fleet wanders)
	// rather than zeroing this.
	Hotspots int
	// WanderFrac is the fraction of the fleet that ignores hotspots and
	// random-walks uniformly, providing the background traffic every road
	// sees in a real city. 0 selects 0.3; use a negative value for none.
	WanderFrac float64
	// Outbound reverses the hotspot gravity: vehicles flee their
	// attractor instead of approaching it — evening rush flowing from the
	// centre to the outskirts, the directional asymmetry Section 2.1
	// motivates modelling the two directions of a road separately for.
	Outbound bool
	// Seed drives fleet placement and turn choices.
	Seed uint64
}

func (c *SimConfig) defaults(nSeg int) {
	if c.Vehicles == 0 {
		c.Vehicles = nSeg / 2
		if c.Vehicles < 10 {
			c.Vehicles = 10
		}
	}
	if c.Steps == 0 {
		c.Steps = 600
	}
	if c.RecordEvery == 0 {
		c.RecordEvery = c.Steps / 100
		if c.RecordEvery < 1 {
			c.RecordEvery = 1
		}
	}
	if c.Dt == 0 {
		c.Dt = 2
	}
	if c.VMax == 0 {
		c.VMax = 14
	}
	if c.VMin == 0 {
		c.VMin = 1
	}
	if c.RhoJam == 0 {
		c.RhoJam = 0.15
	}
	if c.Hotspots == 0 {
		c.Hotspots = 4
	}
	if c.WanderFrac == 0 {
		c.WanderFrac = 0.3
	} else if c.WanderFrac < 0 {
		c.WanderFrac = 0
	}
}

// vehicle is one simulated car: the segment it is on, how far along it is,
// and the hotspot it is currently drawn to (-1 for wanderers that turn
// uniformly at random).
type vehicle struct {
	seg     int
	pos     float64
	attract int
}

// Simulate runs the microsimulation and returns the recorded snapshots in
// time order. Densities are vehicles per metre per segment. The simulation
// is deterministic in cfg.Seed.
//
// Dynamics: each vehicle moves at the Greenshields speed
// v = max(VMin, VMax·(1−ρ/ρ_jam)) of its current segment, where ρ is the
// segment's instantaneous density. At an intersection it picks the outgoing
// segment whose far end is closest to its attractor with high probability
// (softmax over negative distance), occasionally wandering — a biased
// random walk, which is MNTG's movement model plus hotspot gravity.
func Simulate(net *roadnet.Network, cfg SimConfig) ([]Snapshot, error) {
	var snaps []Snapshot
	err := simulate(net, &cfg, func(recordIdx int, fleet []vehicle, count []int) {
		snap := make(Snapshot, len(count))
		for i, c := range count {
			snap[i] = float64(c) / net.Segments[i].Length
		}
		snaps = append(snaps, snap)
	})
	if err != nil {
		return nil, err
	}
	return snaps, nil
}

// simulate is the shared integrator behind Simulate and
// SimulateTrajectories: it runs the fleet and invokes onRecord at every
// recording instant with the live fleet and per-segment vehicle counts.
func simulate(net *roadnet.Network, cfg *SimConfig, onRecord func(recordIdx int, fleet []vehicle, count []int)) error {
	nSeg := len(net.Segments)
	if nSeg == 0 {
		return fmt.Errorf("traffic: network has no segments")
	}
	cfg.defaults(nSeg)
	rng := gen.NewRNG(cfg.Seed)
	out := net.OutSegments()

	// Dead-end intersections (no outgoing segments) teleport the vehicle;
	// precompute to avoid per-tick checks.
	// Hotspot positions: random intersections, biased toward the center by
	// averaging with the centroid so the "city core" attracts.
	var cx, cy float64
	for _, p := range net.Intersections {
		cx += p.X
		cy += p.Y
	}
	cx /= float64(len(net.Intersections))
	cy /= float64(len(net.Intersections))
	type point struct{ x, y float64 }
	hot := make([]point, cfg.Hotspots)
	for i := range hot {
		p := net.Intersections[rng.Intn(len(net.Intersections))]
		hot[i] = point{x: (p.X + cx) / 2, y: (p.Y + cy) / 2}
	}

	// Fleet: vehicles start on random segments, each pulled to a random
	// hotspot; popular hotspots get more vehicles (Zipf-ish weighting).
	count := make([]int, nSeg) // vehicles currently on each segment
	fleet := make([]vehicle, cfg.Vehicles)
	for i := range fleet {
		seg := rng.Intn(nSeg)
		// min of two draws biases the fleet toward low-index hotspots so
		// some hotspots are busier than others, as in real cities.
		a, b := rng.Intn(cfg.Hotspots), rng.Intn(cfg.Hotspots)
		if b < a {
			a = b
		}
		if rng.Bool(cfg.WanderFrac) {
			a = -1 // background traffic: uniform random walk
		}
		fleet[i] = vehicle{seg: seg, pos: rng.Float64() * net.Segments[seg].Length, attract: a}
		count[seg]++
	}

	endX := make([]float64, nSeg)
	endY := make([]float64, nSeg)
	for i, s := range net.Segments {
		endX[i] = net.Intersections[s.To].X
		endY[i] = net.Intersections[s.To].Y
	}

	recordIdx := 0
	record := func() {
		onRecord(recordIdx, fleet, count)
		recordIdx++
	}

	for step := 1; step <= cfg.Steps; step++ {
		for vi := range fleet {
			v := &fleet[vi]
			s := &net.Segments[v.seg]
			rho := float64(count[v.seg]) / s.Length
			speed := cfg.VMax * (1 - rho/cfg.RhoJam)
			if speed < cfg.VMin {
				speed = cfg.VMin
			}
			v.pos += speed * cfg.Dt
			if v.pos < s.Length {
				continue
			}
			// Reached the far intersection: choose the next segment.
			choices := out[s.To]
			count[v.seg]--
			if len(choices) == 0 {
				// Dead end: restart somewhere random.
				v.seg = rng.Intn(nSeg)
				v.pos = 0
				count[v.seg]++
				continue
			}
			next := choices[0]
			if len(choices) > 1 {
				if v.attract >= 0 && rng.Bool(0.85) {
					// Head toward the attractor (or directly away from it
					// in Outbound mode): pick the choice whose far end is
					// nearest (farthest).
					h := hot[v.attract]
					best, bestD := -1, math.Inf(1)
					if cfg.Outbound {
						bestD = -1
					}
					for _, c := range choices {
						if c == v.seg { // avoid immediate U-turns when possible
							continue
						}
						dx, dy := endX[c]-h.x, endY[c]-h.y
						d := dx*dx + dy*dy
						if (!cfg.Outbound && d < bestD) || (cfg.Outbound && d > bestD) {
							best, bestD = c, d
						}
					}
					if best >= 0 {
						next = best
					}
				} else {
					next = choices[rng.Intn(len(choices))]
				}
			}
			// Occasionally retarget, so traffic keeps circulating.
			if v.attract >= 0 && rng.Bool(0.02) {
				v.attract = rng.Intn(cfg.Hotspots)
			}
			v.seg = next
			v.pos = 0
			count[next]++
		}
		if step%cfg.RecordEvery == 0 {
			record()
		}
	}
	if recordIdx == 0 {
		record()
	}
	return nil
}

// ApplySnapshot writes snapshot densities into the network's segments.
func ApplySnapshot(net *roadnet.Network, s Snapshot) error {
	return net.SetDensities(s)
}
