package traffic

import (
	"math"
	"testing"

	"roadpart/internal/gen"
	"roadpart/internal/linalg"
	"roadpart/internal/roadnet"
)

// lineNet builds a directed chain 0→1→2→3 of 100 m segments.
func lineNet() *roadnet.Network {
	n := &roadnet.Network{}
	for i := 0; i < 4; i++ {
		n.Intersections = append(n.Intersections, roadnet.Intersection{ID: i, X: float64(i) * 100})
	}
	for i := 0; i < 3; i++ {
		n.Segments = append(n.Segments, roadnet.Segment{ID: i, From: i, To: i + 1, Length: 100})
	}
	return n
}

func TestShortestPathChain(t *testing.T) {
	route, err := ShortestPath(lineNet(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 3 || route[0] != 0 || route[1] != 1 || route[2] != 2 {
		t.Fatalf("route = %v, want [0 1 2]", route)
	}
}

func TestShortestPathPrefersShorter(t *testing.T) {
	// Two routes from 0 to 2: direct long segment vs two short ones.
	n := &roadnet.Network{
		Intersections: []roadnet.Intersection{{ID: 0}, {ID: 1, X: 50}, {ID: 2, X: 100}},
		Segments: []roadnet.Segment{
			{ID: 0, From: 0, To: 2, Length: 500},
			{ID: 1, From: 0, To: 1, Length: 100},
			{ID: 2, From: 1, To: 2, Length: 100},
		},
	}
	route, err := ShortestPath(n, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 || route[0] != 1 || route[1] != 2 {
		t.Fatalf("route = %v, want [1 2]", route)
	}
}

func TestShortestPathRespectsDirection(t *testing.T) {
	// The chain is one-way: no route backwards.
	if _, err := ShortestPath(lineNet(), 3, 0); err == nil {
		t.Fatal("reverse route should not exist")
	}
}

func TestShortestPathTrivialAndErrors(t *testing.T) {
	n := lineNet()
	route, err := ShortestPath(n, 2, 2)
	if err != nil || route != nil {
		t.Fatalf("same-node route should be empty, got %v, %v", route, err)
	}
	if _, err := ShortestPath(n, -1, 0); err == nil {
		t.Fatal("bad endpoint should error")
	}
}

// testCity returns a modest connected city for simulation tests.
func testCity(t *testing.T) *roadnet.Network {
	t.Helper()
	net, err := gen.City(gen.CityConfig{TargetIntersections: 120, TargetSegments: 260, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSimulateProducesSnapshots(t *testing.T) {
	net := testCity(t)
	snaps, err := Simulate(net, SimConfig{Vehicles: 300, Steps: 100, RecordEvery: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 10 {
		t.Fatalf("snapshots = %d, want 10", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if len(last) != len(net.Segments) {
		t.Fatalf("snapshot length %d != %d segments", len(last), len(net.Segments))
	}
	var total float64
	for i, d := range last {
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("invalid density %v", d)
		}
		total += d * net.Segments[i].Length
	}
	// Vehicle conservation: densities × lengths sum back to the fleet.
	if math.Abs(total-300) > 1e-6 {
		t.Fatalf("vehicle mass = %v, want 300", total)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	net := testCity(t)
	a, err := Simulate(net, SimConfig{Vehicles: 100, Steps: 50, RecordEvery: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(net, SimConfig{Vehicles: 100, Steps: 50, RecordEvery: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a[0] {
		if a[0][i] != b[0][i] {
			t.Fatal("simulation should be deterministic in seed")
		}
	}
}

func TestSimulateCreatesSpatialStructure(t *testing.T) {
	// Hotspot gravity should leave some segments much busier than others;
	// a flat density field would defeat congestion-based partitioning.
	net := testCity(t)
	snaps, err := Simulate(net, SimConfig{Vehicles: 500, Steps: 300, RecordEvery: 300, Hotspots: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := snaps[0]
	mean := linalg.Mean(d)
	if mean <= 0 {
		t.Fatal("empty traffic")
	}
	cv := math.Sqrt(linalg.Variance(d)) / mean
	if cv < 0.5 {
		t.Fatalf("density coefficient of variation %v too flat for hotspot traffic", cv)
	}
}

func TestSimulateOutboundDiffersFromInbound(t *testing.T) {
	// Same seed, opposite gravity: the density fields must differ, and
	// inbound flow should concentrate mass nearer the hotspots than
	// outbound flow does.
	net := testCity(t)
	in, err := Simulate(net, SimConfig{Vehicles: 400, Steps: 200, RecordEvery: 200, Hotspots: 2, WanderFrac: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Simulate(net, SimConfig{Vehicles: 400, Steps: 200, RecordEvery: 200, Hotspots: 2, WanderFrac: -1, Outbound: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range in[0] {
		if in[0][i] != out[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("outbound gravity produced an identical field")
	}
}

func TestSimulateEmptyNetwork(t *testing.T) {
	if _, err := Simulate(&roadnet.Network{}, SimConfig{}); err == nil {
		t.Fatal("empty network should error")
	}
}

func TestApplySnapshot(t *testing.T) {
	net := lineNet()
	if err := ApplySnapshot(net, Snapshot{0.1, 0.2, 0.3}); err != nil {
		t.Fatal(err)
	}
	if net.Segments[2].Density != 0.3 {
		t.Fatal("snapshot not applied")
	}
	if err := ApplySnapshot(net, Snapshot{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestSyntheticFieldShape(t *testing.T) {
	net := testCity(t)
	snap, err := SyntheticField(net, FieldConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != len(net.Segments) {
		t.Fatal("field length mismatch")
	}
	for _, d := range snap {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("invalid field density %v", d)
		}
	}
	// Spatial correlation: adjacent segments should be more similar than
	// random pairs.
	g, err := roadnet.DualGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	var adjDiff, adjN float64
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if e.To > u {
				adjDiff += math.Abs(snap[u] - snap[e.To])
				adjN++
			}
		}
	}
	adjDiff /= adjN
	rng := gen.NewRNG(1)
	var rndDiff float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		a, b := rng.Intn(len(snap)), rng.Intn(len(snap))
		rndDiff += math.Abs(snap[a] - snap[b])
	}
	rndDiff /= trials
	if adjDiff >= rndDiff {
		t.Fatalf("no spatial correlation: adjacent diff %v >= random diff %v", adjDiff, rndDiff)
	}
}

func TestSyntheticFieldDeterministic(t *testing.T) {
	net := testCity(t)
	a, _ := SyntheticField(net, FieldConfig{Seed: 8})
	b, _ := SyntheticField(net, FieldConfig{Seed: 8})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("field should be deterministic in seed")
		}
	}
	c, _ := SyntheticField(net, FieldConfig{Seed: 9})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different fields")
	}
}

func TestSyntheticFieldEmptyNetwork(t *testing.T) {
	if _, err := SyntheticField(&roadnet.Network{}, FieldConfig{}); err == nil {
		t.Fatal("empty network should error")
	}
}
