package traffic

import (
	"roadpart/internal/gen"
	"roadpart/internal/roadnet"
)

// TrajPoint is one sampled vehicle position: planar coordinates at a
// recording instant. GPS noise, when requested, is already applied.
type TrajPoint struct {
	X, Y float64
	// T is the recording index (0, 1, 2, …), one per RecordEvery ticks.
	T int
}

// Trajectory is one vehicle's ordered samples across the simulation.
type Trajectory []TrajPoint

// SimulateTrajectories runs the same microsimulation as Simulate but
// returns raw vehicle trajectories instead of densities — the form MNTG
// delivered its output in, ready for the mapmatch package to turn back
// into per-segment densities. gpsNoise adds zero-mean uniform position
// error of that many metres in each axis (0 for exact positions).
//
// The trajectory of vehicle v is the v-th element of the result; every
// trajectory has one sample per recording instant.
func SimulateTrajectories(net *roadnet.Network, cfg SimConfig, gpsNoise float64) ([]Trajectory, error) {
	noiseRng := gen.NewRNG(cfg.Seed ^ 0xfeedfeed)
	var trajs []Trajectory
	err := simulate(net, &cfg, func(recordIdx int, fleet []vehicle, count []int) {
		if trajs == nil {
			trajs = make([]Trajectory, len(fleet))
		}
		for vi := range fleet {
			v := &fleet[vi]
			s := net.Segments[v.seg]
			a, b := net.Intersections[s.From], net.Intersections[s.To]
			frac := v.pos / s.Length
			if frac > 1 {
				frac = 1
			}
			x := a.X + frac*(b.X-a.X)
			y := a.Y + frac*(b.Y-a.Y)
			if gpsNoise > 0 {
				x += gpsNoise * (2*noiseRng.Float64() - 1)
				y += gpsNoise * (2*noiseRng.Float64() - 1)
			}
			trajs[vi] = append(trajs[vi], TrajPoint{X: x, Y: y, T: recordIdx})
		}
	})
	if err != nil {
		return nil, err
	}
	return trajs, nil
}
