package traffic

import (
	"math"
	"testing"
)

func TestSimulateTrajectoriesShape(t *testing.T) {
	net := testCity(t)
	trajs, err := SimulateTrajectories(net, SimConfig{Vehicles: 50, Steps: 100, RecordEvery: 20, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trajs) != 50 {
		t.Fatalf("trajectories = %d, want 50", len(trajs))
	}
	for vi, tr := range trajs {
		if len(tr) != 5 {
			t.Fatalf("vehicle %d has %d samples, want 5", vi, len(tr))
		}
		for i, p := range tr {
			if p.T != i {
				t.Fatalf("vehicle %d sample %d has T=%d", vi, i, p.T)
			}
		}
	}
}

func TestSimulateTrajectoriesWithinNetwork(t *testing.T) {
	net := testCity(t)
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range net.Intersections {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	trajs, err := SimulateTrajectories(net, SimConfig{Vehicles: 40, Steps: 60, RecordEvery: 30, Seed: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trajs {
		for _, p := range tr {
			if p.X < minX-1 || p.X > maxX+1 || p.Y < minY-1 || p.Y > maxY+1 {
				t.Fatalf("noise-free sample (%v,%v) outside the network bbox", p.X, p.Y)
			}
		}
	}
}

func TestSimulateTrajectoriesGPSNoise(t *testing.T) {
	net := testCity(t)
	cfg := SimConfig{Vehicles: 30, Steps: 40, RecordEvery: 40, Seed: 3}
	clean, err := SimulateTrajectories(net, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := SimulateTrajectories(net, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	var moved int
	for vi := range clean {
		for i := range clean[vi] {
			dx := clean[vi][i].X - noisy[vi][i].X
			dy := clean[vi][i].Y - noisy[vi][i].Y
			if dx != 0 || dy != 0 {
				moved++
			}
			if math.Abs(dx) > 10 || math.Abs(dy) > 10 {
				t.Fatalf("noise exceeds amplitude: (%v,%v)", dx, dy)
			}
		}
	}
	if moved == 0 {
		t.Fatal("GPS noise had no effect")
	}
}

func TestSimulateTrajectoriesDeterministic(t *testing.T) {
	net := testCity(t)
	cfg := SimConfig{Vehicles: 20, Steps: 30, RecordEvery: 30, Seed: 4}
	a, err := SimulateTrajectories(net, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTrajectories(net, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range a {
		for i := range a[vi] {
			if a[vi][i] != b[vi][i] {
				t.Fatal("trajectories should be deterministic in seed")
			}
		}
	}
}

func TestSimulateTrajectoriesMatchesSimulateDensities(t *testing.T) {
	// The same seed and config must produce identical dynamics: densities
	// derived from trajectory segment occupancy equal Simulate's output.
	net := testCity(t)
	cfg := SimConfig{Vehicles: 60, Steps: 50, RecordEvery: 50, Seed: 5}
	snaps, err := Simulate(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mass float64
	for i, d := range snaps[0] {
		mass += d * net.Segments[i].Length
	}
	if math.Abs(mass-60) > 1e-9 {
		t.Fatalf("density mass = %v", mass)
	}
	trajs, err := SimulateTrajectories(net, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(trajs) != 60 || len(trajs[0]) != 1 {
		t.Fatalf("trajectory shape %dx%d", len(trajs), len(trajs[0]))
	}
}
