package roadpart

import (
	"context"
	"io"

	"roadpart/internal/core"
	"roadpart/internal/cut"
	"roadpart/internal/gen"
	"roadpart/internal/graph"
	"roadpart/internal/hierarchy"
	"roadpart/internal/jiger"
	"roadpart/internal/mapmatch"
	"roadpart/internal/metrics"
	"roadpart/internal/render"
	"roadpart/internal/roadnet"
	"roadpart/internal/supergraph"
	"roadpart/internal/temporal"
	"roadpart/internal/traffic"
)

// Road network model (Definitions 1–2 of the paper).
type (
	// Network is a directed urban road network: intersections joined by
	// directed road segments carrying traffic densities.
	Network = roadnet.Network
	// Intersection is a node of the physical network.
	Intersection = roadnet.Intersection
	// Segment is a directed road segment with length and density.
	Segment = roadnet.Segment
	// Graph is the undirected (dual) road graph the framework operates on.
	Graph = graph.Graph
)

// Framework configuration and results.
type (
	// Config parameterizes the partitioning framework.
	Config = core.Config
	// Result is one partitioning outcome: assignment, quality metrics and
	// the per-module timing breakdown.
	Result = core.Result
	// Pipeline caches the k-independent stages so sweeps over k are cheap.
	Pipeline = core.Pipeline
	// Scheme selects the cut and whether the supergraph level runs.
	Scheme = core.Scheme
	// Timing is the per-module wall-clock breakdown.
	Timing = core.Timing
	// Supergraph is the mined condensed graph of supernodes.
	Supergraph = supergraph.Supergraph
	// Report bundles the inter, intra, GDBI and ANS quality measures.
	Report = metrics.Report
)

// Partitioning schemes (Section 6.3).
const (
	// AG applies α-Cut directly on the road graph.
	AG = core.AG
	// NG applies normalized cut directly on the road graph.
	NG = core.NG
	// ASG applies α-Cut on the mined road supergraph (the scalable
	// configuration; recommended default).
	ASG = core.ASG
	// NSG applies normalized cut on the mined road supergraph.
	NSG = core.NSG
)

// Synthetic data generation.
type (
	// CityConfig describes a lattice city for GenerateCity.
	CityConfig = gen.CityConfig
	// RadialConfig describes a ring-and-spoke city for GenerateRadialCity.
	RadialConfig = gen.RadialConfig
	// TrafficConfig tunes the biased-random-walk microsimulation.
	TrafficConfig = traffic.SimConfig
	// ODTrafficConfig tunes the origin–destination trip simulation.
	ODTrafficConfig = traffic.ODConfig
	// FieldConfig tunes the closed-form congestion field synthesizer.
	FieldConfig = traffic.FieldConfig
	// Snapshot is a per-segment density vector at one timestamp.
	Snapshot = traffic.Snapshot
)

// Hierarchical partitioning.
type (
	// HierarchyConfig tunes multi-level region-tree construction.
	HierarchyConfig = hierarchy.Config
	// Region is one node of a hierarchical partition tree.
	Region = hierarchy.Node
)

// BuildHierarchy recursively partitions the network into a region tree:
// city → districts → corridors, each level re-partitioned on its own
// densities. Cut the tree at any depth with (*Region).FlattenLevel.
func BuildHierarchy(net *Network, cfg HierarchyConfig) (*Region, error) {
	return hierarchy.Build(net, cfg)
}

// Temporal re-partitioning (Section 6.4).
type (
	// TemporalConfig tunes repeated re-partitioning over time.
	TemporalConfig = temporal.Config
	// TemporalMode selects global or distributed re-partitioning.
	TemporalMode = temporal.Mode
	// Frame is the partitioning state at one timestamp.
	Frame = temporal.Frame
	// Tracker owns the long-lived state of an incremental
	// re-partitioning stream: feed it full density vectors (Step) or
	// sparse deltas (ApplyDelta) and it recomputes only what the
	// observed drift requires, bit-identical to partitioning from
	// scratch.
	Tracker = temporal.Tracker
	// DensityUpdate is one sparse density change (segment, new density).
	DensityUpdate = roadnet.DensityUpdate
	// DensityDelta is an ordered list of sparse density changes.
	DensityDelta = roadnet.DensityDelta
)

// Temporal modes.
const (
	// ModeGlobal re-partitions the full network at every timestamp.
	ModeGlobal = temporal.ModeGlobal
	// ModeDistributed re-partitions each region independently.
	ModeDistributed = temporal.ModeDistributed
)

// Partition runs the full framework — road graph construction, optional
// supergraph mining, spectral partitioning — and returns cfg.K spatially
// connected regions with quality metrics and timing.
func Partition(net *Network, cfg Config) (*Result, error) {
	return core.Partition(net, cfg)
}

// PartitionCtx is Partition with cooperative cancellation: every stage of
// the pipeline — supergraph mining, the eigensolve, k-means, partition
// refinement — observes ctx between bounded work items and returns an
// error wrapping ctx.Err() once it is done. An uncancelled call is
// bit-identical to Partition.
func PartitionCtx(ctx context.Context, net *Network, cfg Config) (*Result, error) {
	return core.PartitionCtx(ctx, net, cfg)
}

// NewPipeline runs the k-independent stages once so several k values (or
// BestKByANS) can be evaluated cheaply.
func NewPipeline(net *Network, cfg Config) (*Pipeline, error) {
	return core.NewPipeline(net, cfg)
}

// NewPipelineCtx is NewPipeline with cooperative cancellation of the
// k-independent stages (graph construction and supergraph mining). The
// returned Pipeline's PartitionKCtx, SweepKCtx and BestKByANSCtx methods
// accept per-call contexts.
func NewPipelineCtx(ctx context.Context, net *Network, cfg Config) (*Pipeline, error) {
	return core.NewPipelineCtx(ctx, net, cfg)
}

// DualGraph builds the road graph (Definition 2): one node per segment,
// one undirected link per segment adjacency.
func DualGraph(net *Network) (*Graph, error) {
	return roadnet.DualGraph(net)
}

// Evaluate computes the paper's four quality measures for an assignment
// of the graph's nodes (with features f) into partitions.
func Evaluate(f []float64, assign []int, g *Graph) (Report, error) {
	return metrics.Evaluate(f, assign, g)
}

// ValidatePartition verifies conditions C.1–C.2: dense labels and
// connected partitions.
func ValidatePartition(g *Graph, assign []int) error {
	return metrics.ValidatePartition(g, assign)
}

// PartitionSimilarity returns the Adjusted Rand Index between two
// assignments of the same segment set (1 = identical regions).
func PartitionSimilarity(a, b []int) (float64, error) {
	return metrics.ARI(a, b)
}

// BaselineJiGeroliminis runs the Ji & Geroliminis comparison method on a
// road graph with segment densities f: normalized-cut over-partitioning,
// small-partition merging and boundary adjustment.
func BaselineJiGeroliminis(g *Graph, f []float64, k int, seed uint64) ([]int, error) {
	res, err := jiger.Partition(g, f, k, jiger.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	return res.Assign, nil
}

// RefinePartition applies greedy α-Cut boundary refinement to an existing
// assignment over the similarity-weighted road graph, returning the
// refined assignment and its partition count.
func RefinePartition(g *Graph, f []float64, assign []int) ([]int, int, error) {
	simG := core.SimilarityWeighted(g, f)
	out, k, _, err := cut.RefineAlphaCut(simG, f, assign, cut.RefineOptions{})
	return out, k, err
}

// GenerateCity builds a synthetic lattice city network (no traffic).
func GenerateCity(cfg CityConfig) (*Network, error) { return gen.City(cfg) }

// GenerateRadialCity builds a synthetic ring-and-spoke city network.
func GenerateRadialCity(cfg RadialConfig) (*Network, error) { return gen.Radial(cfg) }

// SimulateTraffic runs the biased-random-walk microsimulation and returns
// density snapshots over time.
func SimulateTraffic(net *Network, cfg TrafficConfig) ([]Snapshot, error) {
	return traffic.Simulate(net, cfg)
}

// SimulateODTraffic runs the origin–destination trip simulation
// (Dijkstra-routed commuters).
func SimulateODTraffic(net *Network, cfg ODTrafficConfig) ([]Snapshot, error) {
	return traffic.SimulateOD(net, cfg)
}

// Trajectory is one vehicle's sampled positions over time.
type Trajectory = traffic.Trajectory

// SimulateTrajectories runs the microsimulation but returns raw vehicle
// trajectories (optionally with gpsNoise metres of position error) — the
// form MNTG delivered its data in.
func SimulateTrajectories(net *Network, cfg TrafficConfig, gpsNoise float64) ([]Trajectory, error) {
	return traffic.SimulateTrajectories(net, cfg, gpsNoise)
}

// MatchDensities reconstructs per-segment density snapshots (timestamps
// 0..maxT) from vehicle trajectories by map matching every sample onto
// its nearest heading-compatible segment within maxDist metres — the
// paper's trajectory→density step.
func MatchDensities(net *Network, trajs []Trajectory, maxT int, maxDist float64) ([]Snapshot, error) {
	ix, err := mapmatch.NewIndex(net, 0)
	if err != nil {
		return nil, err
	}
	return mapmatch.Densities(net, ix, trajs, maxT, maxDist)
}

// SynthesizeField produces a closed-form hotspot density snapshot, the
// fast substitute for a full simulation on very large networks.
func SynthesizeField(net *Network, cfg FieldConfig) (Snapshot, error) {
	return traffic.SyntheticField(net, cfg)
}

// ApplyDensities writes a snapshot's densities into the network.
func ApplyDensities(net *Network, s Snapshot) error { return traffic.ApplySnapshot(net, s) }

// AverageDensities returns the element-wise mean of the last window
// snapshots (all when window <= 0), recovering spatial structure from
// shot-noisy instantaneous counts.
func AverageDensities(snaps []Snapshot, window int) (Snapshot, error) {
	return traffic.TimeAverage(snaps, window)
}

// Repartition re-partitions the network at the selected snapshot indices,
// globally or distributively (Section 6.4), returning one frame per index.
// The first frame's ARIvsPrev is NaN (it has no predecessor); average
// frame stability with MeanARI, which skips it.
func Repartition(net *Network, snaps []Snapshot, at []int, mode TemporalMode, cfg TemporalConfig) ([]Frame, error) {
	return temporal.Run(net, snaps, at, mode, cfg)
}

// RepartitionCtx is Repartition with cooperative cancellation: the run
// stops between pipeline stages and between region re-splits when ctx
// ends, returning the context's error.
func RepartitionCtx(ctx context.Context, net *Network, snaps []Snapshot, at []int, mode TemporalMode, cfg TemporalConfig) ([]Frame, error) {
	return temporal.RunCtx(ctx, net, snaps, at, mode, cfg)
}

// NewTracker prepares an incremental re-partitioning stream over net
// (see Tracker). Densities arrive per step, so net's current densities
// are not consulted until the first Step or ApplyDelta.
func NewTracker(net *Network, mode TemporalMode, cfg TemporalConfig) (*Tracker, error) {
	return temporal.NewTracker(net, mode, cfg)
}

// MeanARI averages ARIvsPrev over frames, skipping undefined entries
// (the first frame). It returns NaN when no frame has a defined ARI.
func MeanARI(frames []Frame) float64 { return temporal.MeanARI(frames) }

// LoadNetwork reads a network from a JSON file.
func LoadNetwork(path string) (*Network, error) { return roadnet.LoadJSON(path) }

// SaveNetwork writes a network to a JSON file.
func SaveNetwork(net *Network, path string) error { return net.SaveJSON(path) }

// ReadGeoJSON parses a GeoJSON FeatureCollection of LineStrings into a
// network, merging endpoints closer than tol metres.
func ReadGeoJSON(r io.Reader, tol float64) (*Network, error) {
	return roadnet.ReadGeoJSON(r, tol)
}

// WriteGeoJSON serializes the network (and optionally a partition
// assignment, which may be nil) as GeoJSON.
func WriteGeoJSON(w io.Writer, net *Network, assign []int) error {
	return net.WriteGeoJSON(w, assign)
}

// RenderPartitionsSVG draws the network with segments colored by
// partition.
func RenderPartitionsSVG(w io.Writer, net *Network, assign []int, title string) error {
	return render.Partitions(w, net, assign, render.Options{Title: title})
}

// RenderDensitiesSVG draws the network with segments colored by
// congestion.
func RenderDensitiesSVG(w io.Writer, net *Network, title string) error {
	return render.Densities(w, net, render.Options{Title: title})
}
