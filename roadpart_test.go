package roadpart

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the entire public API surface the way a
// downstream user would: generate, simulate, partition, evaluate, refine,
// compare to the baseline, track over time, render, and round-trip disk.
func TestFacadeEndToEnd(t *testing.T) {
	net, err := GenerateCity(CityConfig{TargetIntersections: 150, TargetSegments: 280, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := SimulateTraffic(net, TrafficConfig{Vehicles: 700, Steps: 200, RecordEvery: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := AverageDensities(snaps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyDensities(net, snap); err != nil {
		t.Fatal(err)
	}

	res, err := Partition(net, Config{K: 4, Scheme: ASG, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Fatalf("K = %d, want 4", res.K)
	}

	g, err := DualGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePartition(g, res.Assign); err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(net.Densities(), res.Assign, g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.K != 4 || rep.ANS <= 0 {
		t.Fatalf("suspicious report: %+v", rep)
	}

	refined, k, err := RefinePartition(g, net.Densities(), res.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Fatalf("refined k = %d", k)
	}
	if err := ValidatePartition(g, refined); err != nil {
		t.Fatalf("refined partition invalid: %v", err)
	}
	// Refinement may restructure heavily when the start is poor; the
	// similarity must still be a well-defined ARI value.
	sim, err := PartitionSimilarity(res.Assign, refined)
	if err != nil {
		t.Fatal(err)
	}
	if sim < -1 || sim > 1 {
		t.Fatalf("ARI out of range: %v", sim)
	}

	base, err := BaselineJiGeroliminis(g, net.Densities(), 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePartition(g, base); err != nil {
		t.Fatal(err)
	}

	frames, err := Repartition(net, snaps, []int{1, 4}, ModeDistributed, TemporalConfig{Scheme: ASG, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("frames = %d, want 2", len(frames))
	}

	var svg bytes.Buffer
	if err := RenderPartitionsSVG(&svg, net, res.Assign, "test"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Fatal("SVG output malformed")
	}
	svg.Reset()
	if err := RenderDensitiesSVG(&svg, net, "densities"); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "net.json")
	if err := SaveNetwork(net, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadNetwork(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Segments) != len(net.Segments) {
		t.Fatal("round trip lost segments")
	}
}

func TestFacadePipelineAndAutoK(t *testing.T) {
	net, err := GenerateRadialCity(RadialConfig{Rings: 6, Spokes: 10, TwoWay: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := SynthesizeField(net, FieldConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyDensities(net, snap); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(net, Config{Scheme: AG, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	best, sweep, err := p.BestKByANS(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if best < 2 || best > 6 || len(sweep) != 5 {
		t.Fatalf("auto-k failed: best=%d sweep=%d", best, len(sweep))
	}
	odSnaps, err := SimulateODTraffic(net, ODTrafficConfig{Vehicles: 150, Steps: 80, RecordEvery: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(odSnaps) == 0 {
		t.Fatal("no OD snapshots")
	}
}

func TestFacadeHierarchyAndGeoJSON(t *testing.T) {
	net, err := GenerateCity(CityConfig{TargetIntersections: 200, TargetSegments: 380, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := SimulateTraffic(net, TrafficConfig{Vehicles: 1200, Steps: 200, RecordEvery: 200, Hotspots: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyDensities(net, snaps[0]); err != nil {
		t.Fatal(err)
	}

	root, err := BuildHierarchy(net, HierarchyConfig{Scheme: ASG, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := DualGraph(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Validate(g); err != nil {
		t.Fatal(err)
	}
	assign, k := root.FlattenLevel(2)
	if k < 1 {
		t.Fatalf("flatten k = %d", k)
	}
	if err := ValidatePartition(g, assign); err != nil {
		t.Fatal(err)
	}

	var geo bytes.Buffer
	if err := WriteGeoJSON(&geo, net, assign); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGeoJSON(&geo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Segments) != len(net.Segments) {
		t.Fatalf("GeoJSON round trip: %d vs %d segments", len(back.Segments), len(net.Segments))
	}
}
